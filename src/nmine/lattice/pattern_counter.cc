#include "nmine/lattice/pattern_counter.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "nmine/core/check.h"
#include "nmine/exec/sharded_reduce.h"
#include "nmine/obs/profiler.h"
#include "nmine/runtime/run_control.h"

namespace nmine {

PatternTrie::PatternTrie(const std::vector<Pattern>& patterns)
    : num_patterns_(patterns.size()) {
  nodes_.emplace_back();  // root
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    int32_t node = 0;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId s = p[i];
      auto& children = nodes_[static_cast<size_t>(node)].children;
      auto it = std::lower_bound(
          children.begin(), children.end(), s,
          [](const std::pair<SymbolId, int32_t>& e, SymbolId key) {
            return e.first < key;
          });
      if (it != children.end() && it->first == s) {
        node = it->second;
      } else {
        int32_t child = static_cast<int32_t>(nodes_.size());
        // Insert before growing nodes_: `it` is invalidated by emplace_back
        // only through `children`, which emplace_back may also move; compute
        // the index first.
        size_t insert_at = static_cast<size_t>(it - children.begin());
        nodes_.emplace_back();
        auto& fresh_children = nodes_[static_cast<size_t>(node)].children;
        fresh_children.insert(
            fresh_children.begin() + static_cast<long>(insert_at),
            {s, child});
        node = child;
      }
    }
    nodes_[static_cast<size_t>(node)].pattern_indices.push_back(
        static_cast<int32_t>(pi));
  }
  // Pack leaf runs: a child that is childless, ends exactly one pattern,
  // and sits on a non-wildcard edge needs no recursion — its whole
  // contribution is best[pi] = max(best[pi], product * col[sym]), which
  // the match kernel finishes for the entire run at once (patterns never
  // end in a wildcard, so every final-position edge is eligible). Children
  // ending several duplicate patterns, or with subtrees, keep walking.
  for (Node& n : nodes_) {
    n.leaf_first = static_cast<uint32_t>(leaf_syms_.size());
    size_t keep = 0;
    for (const auto& [sym, child] : n.children) {
      const Node& cn = nodes_[static_cast<size_t>(child)];
      if (!IsWildcard(sym) && cn.children.empty() &&
          cn.pattern_indices.size() == 1) {
        leaf_syms_.push_back(sym);
        leaf_pattern_idx_.push_back(cn.pattern_indices[0]);
      } else {
        n.children[keep++] = {sym, child};
      }
    }
    n.children.resize(keep);
    n.leaf_count =
        static_cast<uint32_t>(leaf_syms_.size()) - n.leaf_first;
  }
}

void PatternTrie::BestMatches(const CompatibilityMatrix& c,
                              const Sequence& seq,
                              std::vector<double>* best) const {
  best->assign(num_patterns_, 0.0);
  ColumnIndex cols;
  BestMatchesInto(c, seq, &cols, best->data());
}

void PatternTrie::BestMatchesInto(const CompatibilityMatrix& c,
                                  const Sequence& seq, ColumnIndex* cols,
                                  double* best) const {
  // Hoist the per-position column lookup once per sequence: every trie
  // walk that crosses position j reads factors from the same column
  // C(., seq[j]), so the walk's inner loop is a single indexed load.
  cols->Build(c, seq);
  const MatchKernel& kernel = ActiveMatchKernel();
  for (size_t offset = 0; offset < seq.size(); ++offset) {
    WalkMatch(kernel, cols->cols(), seq, offset, 0, 1.0, best);
  }
}

void PatternTrie::WalkMatch(const MatchKernel& kernel,
                            const double* const* cols, const Sequence& seq,
                            size_t offset, size_t node, double product,
                            double* best) const {
  const Node& n = nodes_[node];
  for (int32_t pi : n.pattern_indices) {
    double& slot = best[static_cast<size_t>(pi)];
    if (product > slot) slot = product;
  }
  if (offset >= seq.size()) return;  // window exhausted; deeper needs symbols
  const double* col = cols[offset];
  if (n.leaf_count > 0) {
    kernel.LeafRunMax(col, product, leaf_syms_.data() + n.leaf_first,
                      leaf_pattern_idx_.data() + n.leaf_first, n.leaf_count,
                      best);
  }
  for (const auto& [sym, child] : n.children) {
    double factor = IsWildcard(sym) ? 1.0 : col[static_cast<size_t>(sym)];
    if (factor == 0.0) continue;
    WalkMatch(kernel, cols, seq, offset + 1, static_cast<size_t>(child),
              product * factor, best);
  }
}

void PatternTrie::BestSupports(const Sequence& seq,
                               std::vector<double>* best) const {
  best->assign(num_patterns_, 0.0);
  BestSupportsInto(seq, best->data());
}

void PatternTrie::BestSupportsInto(const Sequence& seq, double* best) const {
  for (size_t offset = 0; offset < seq.size(); ++offset) {
    WalkSupport(seq, offset, 0, best);
  }
}

void PatternTrie::WalkSupport(const Sequence& seq, size_t offset, size_t node,
                              double* best) const {
  const Node& n = nodes_[node];
  for (int32_t pi : n.pattern_indices) {
    best[static_cast<size_t>(pi)] = 1.0;
  }
  if (offset >= seq.size()) return;
  SymbolId observed = seq[offset];
  for (uint32_t r = 0; r < n.leaf_count; ++r) {
    if (leaf_syms_[n.leaf_first + r] == observed) {
      best[static_cast<size_t>(leaf_pattern_idx_[n.leaf_first + r])] = 1.0;
    }
  }
  for (const auto& [sym, child] : n.children) {
    if (IsWildcard(sym) || sym == observed) {
      WalkSupport(seq, offset + 1, static_cast<size_t>(child), best);
    }
  }
}

namespace {

/// Strategy selection: the trie wins when zero entries prune whole
/// subtrees (sparse matrices; exact-match supports behave like an
/// identity matrix), while on dense matrices nothing prunes and the flat
/// per-pattern sliding-window loop is faster (no recursion, better
/// locality). The 0.5 cut-off is empirical; see bench_micro.
bool UseTrieForMatrix(const CompatibilityMatrix& c) {
  return c.Sparsity() >= 0.5;
}

/// Per-sequence evaluator: either the trie or the flat per-pattern batch,
/// which now runs through the process-wide match kernel (scalar or SIMD).
/// The evaluator itself is immutable after construction and shared across
/// scan workers; all mutable state lives in a per-shard Scratch whose
/// buffers are sized once — the per-record loop does no allocation (the
/// trie path zero-fills, the kernel path overwrites unconditionally).
class BatchEvaluator {
 public:
  struct Scratch {
    explicit Scratch(size_t num_patterns) : best(num_patterns, 0.0) {}
    std::vector<double> best;
    MatchScratch kernel;  // column index + SoA log plane, grow-only
  };

  BatchEvaluator(const std::vector<Pattern>& patterns,
                 const CompatibilityMatrix* c)
      : c_(c) {
    if (c == nullptr || UseTrieForMatrix(*c)) {
      trie_.emplace(patterns);
    } else {
      prep_.Prepare(*c, patterns);
    }
  }

  void Best(const Sequence& seq, Scratch* scratch) const {
    if (trie_.has_value()) {
      std::fill(scratch->best.begin(), scratch->best.end(), 0.0);
      if (c_ != nullptr) {
        trie_->BestMatchesInto(*c_, seq, &scratch->kernel.cols,
                               scratch->best.data());
      } else {
        trie_->BestSupportsInto(seq, scratch->best.data());
      }
      return;
    }
    ActiveMatchKernel().BestMatches(prep_, seq, &scratch->kernel,
                                    scratch->best.data());
  }

 private:
  const CompatibilityMatrix* c_;
  std::optional<PatternTrie> trie_;
  PreparedPatternSet prep_;  // flat path only
};

/// Per-shard kernel over a shared evaluator. The window-sliding section
/// is recorded from whichever thread runs the shard (Section recording is
/// atomic), so profiler totals stay truthful under concurrency.
exec::RecordFnFactory MakeCountKernelFactory(
    const BatchEvaluator& evaluator, obs::Profiler::Section* window_section,
    size_t num_patterns) {
  return [&evaluator, window_section, num_patterns]() -> exec::RecordFn {
    auto scratch = std::make_shared<BatchEvaluator::Scratch>(num_patterns);
    return [&evaluator, window_section, num_patterns,
            scratch](const SequenceRecord& r, std::vector<double>* partial) {
      obs::SectionTimer timer(window_section);
      evaluator.Best(r.symbols, scratch.get());
      for (size_t i = 0; i < num_patterns; ++i) {
        (*partial)[i] += scratch->best[i];
      }
    };
  };
}

Status AverageOverDb(const SequenceDatabase& db,
                     const std::vector<Pattern>& patterns,
                     const CompatibilityMatrix* c, std::vector<double>* totals,
                     const exec::ExecPolicy& exec) {
  NMINE_PROFILE_SCOPE("count.db_batch");
  // Refuse to start (and charge) a scan for an already-stopped run.
  Status rs = runtime::CheckRun(exec.run);
  if (!rs.ok()) return rs;
  // Flat pre-resolved section so the per-sequence M(P,s) window-sliding
  // cost is attributed without any per-record path lookup (and without any
  // cost at all while the profiler is disabled).
  obs::Profiler::Section* window_section =
      obs::ResolveSection("count.window_slide");
  BatchEvaluator evaluator(patterns, c);
  exec::ShardedScanReducer reducer(
      patterns.size(), exec,
      MakeCountKernelFactory(evaluator, window_section, patterns.size()));
  Status s = db.Scan(
      [&reducer](const SequenceRecord& r) { reducer.Consume(r); },
      /*restart=*/[&reducer] { reducer.Restart(); });
  if (!s.ok()) return s;
  // A run stopped mid-scan skipped kernel work: the totals are garbage.
  // Surface the typed stop status instead (the aborted scan stays charged
  // on the failed run; a resumed run repeats it).
  rs = runtime::CheckRun(exec.run);
  if (!rs.ok()) return rs;
  *totals = reducer.Finish();
  const double n = static_cast<double>(db.NumSequences());
  if (n > 0) {
    for (double& t : *totals) t /= n;
  }
  return Status::Ok();
}

std::vector<double> AverageOverRecords(
    const std::vector<SequenceRecord>& records,
    const std::vector<Pattern>& patterns, const CompatibilityMatrix* c,
    const exec::ExecPolicy& exec) {
  NMINE_PROFILE_SCOPE("count.records_batch");
  obs::Profiler::Section* window_section =
      obs::ResolveSection("count.window_slide");
  BatchEvaluator evaluator(patterns, c);
  std::vector<double> totals = exec::ReduceRecords(
      records, patterns.size(), exec,
      MakeCountKernelFactory(evaluator, window_section, patterns.size()));
  const double n = static_cast<double>(records.size());
  if (n > 0) {
    for (double& t : totals) t /= n;
  }
  return totals;
}

}  // namespace

struct BatchCountKernel::Impl {
  Impl(const std::vector<Pattern>& patterns, const CompatibilityMatrix* c)
      : evaluator(patterns, c),
        window_section(obs::ResolveSection("count.window_slide")),
        num_patterns(patterns.size()) {}

  BatchEvaluator evaluator;
  obs::Profiler::Section* window_section;
  size_t num_patterns;
};

BatchCountKernel::BatchCountKernel(const std::vector<Pattern>& patterns,
                                   const CompatibilityMatrix* c)
    : impl_(std::make_unique<Impl>(patterns, c)),
      num_patterns_(patterns.size()) {}

BatchCountKernel::~BatchCountKernel() = default;

exec::RecordFn BatchCountKernel::MakeRecordFn() const {
  return MakeCountKernelFactory(impl_->evaluator, impl_->window_section,
                                impl_->num_patterns)();
}

Status TryCountMatches(const SequenceDatabase& db,
                       const CompatibilityMatrix& c,
                       const std::vector<Pattern>& patterns,
                       std::vector<double>* values,
                       const exec::ExecPolicy& exec) {
  return AverageOverDb(db, patterns, &c, values, exec);
}

Status TryCountSupports(const SequenceDatabase& db,
                        const std::vector<Pattern>& patterns,
                        std::vector<double>* values,
                        const exec::ExecPolicy& exec) {
  return AverageOverDb(db, patterns, nullptr, values, exec);
}

std::vector<double> CountMatches(const SequenceDatabase& db,
                                 const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns,
                                 const exec::ExecPolicy& exec) {
  std::vector<double> values;
  Status s = AverageOverDb(db, patterns, &c, &values, exec);
  NMINE_CHECK(s.ok(), "CountMatches on a fallible database failed; use "
                      "TryCountMatches to handle scan errors");
  return values;
}

std::vector<double> CountSupports(const SequenceDatabase& db,
                                  const std::vector<Pattern>& patterns,
                                  const exec::ExecPolicy& exec) {
  std::vector<double> values;
  Status s = AverageOverDb(db, patterns, nullptr, &values, exec);
  NMINE_CHECK(s.ok(), "CountSupports on a fallible database failed; use "
                      "TryCountSupports to handle scan errors");
  return values;
}

std::vector<double> CountMatchesInRecords(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<Pattern>& patterns, const exec::ExecPolicy& exec) {
  return AverageOverRecords(records, patterns, &c, exec);
}

std::vector<double> CountSupportsInRecords(
    const std::vector<SequenceRecord>& records,
    const std::vector<Pattern>& patterns, const exec::ExecPolicy& exec) {
  return AverageOverRecords(records, patterns, nullptr, exec);
}

}  // namespace nmine
