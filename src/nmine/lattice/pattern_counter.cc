#include "nmine/lattice/pattern_counter.h"

#include <algorithm>
#include <optional>

#include "nmine/core/check.h"
#include "nmine/obs/profiler.h"

namespace nmine {

PatternTrie::PatternTrie(const std::vector<Pattern>& patterns)
    : num_patterns_(patterns.size()) {
  nodes_.emplace_back();  // root
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& p = patterns[pi];
    int32_t node = 0;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId s = p[i];
      auto& children = nodes_[static_cast<size_t>(node)].children;
      auto it = std::lower_bound(
          children.begin(), children.end(), s,
          [](const std::pair<SymbolId, int32_t>& e, SymbolId key) {
            return e.first < key;
          });
      if (it != children.end() && it->first == s) {
        node = it->second;
      } else {
        int32_t child = static_cast<int32_t>(nodes_.size());
        // Insert before growing nodes_: `it` is invalidated by emplace_back
        // only through `children`, which emplace_back may also move; compute
        // the index first.
        size_t insert_at = static_cast<size_t>(it - children.begin());
        nodes_.emplace_back();
        auto& fresh_children = nodes_[static_cast<size_t>(node)].children;
        fresh_children.insert(
            fresh_children.begin() + static_cast<long>(insert_at),
            {s, child});
        node = child;
      }
    }
    nodes_[static_cast<size_t>(node)].pattern_indices.push_back(
        static_cast<int32_t>(pi));
  }
}

void PatternTrie::BestMatches(const CompatibilityMatrix& c,
                              const Sequence& seq,
                              std::vector<double>* best) const {
  best->assign(num_patterns_, 0.0);
  for (size_t offset = 0; offset < seq.size(); ++offset) {
    WalkMatch(c, seq, offset, 0, 1.0, best);
  }
}

void PatternTrie::WalkMatch(const CompatibilityMatrix& c, const Sequence& seq,
                            size_t offset, size_t node, double product,
                            std::vector<double>* best) const {
  const Node& n = nodes_[node];
  for (int32_t pi : n.pattern_indices) {
    double& slot = (*best)[static_cast<size_t>(pi)];
    if (product > slot) slot = product;
  }
  if (offset >= seq.size()) return;  // window exhausted; deeper needs symbols
  SymbolId observed = seq[offset];
  for (const auto& [sym, child] : n.children) {
    double factor = IsWildcard(sym) ? 1.0 : c(sym, observed);
    if (factor == 0.0) continue;
    WalkMatch(c, seq, offset + 1, static_cast<size_t>(child),
              product * factor, best);
  }
}

void PatternTrie::BestSupports(const Sequence& seq,
                               std::vector<double>* best) const {
  best->assign(num_patterns_, 0.0);
  for (size_t offset = 0; offset < seq.size(); ++offset) {
    WalkSupport(seq, offset, 0, best);
  }
}

void PatternTrie::WalkSupport(const Sequence& seq, size_t offset, size_t node,
                              std::vector<double>* best) const {
  const Node& n = nodes_[node];
  for (int32_t pi : n.pattern_indices) {
    (*best)[static_cast<size_t>(pi)] = 1.0;
  }
  if (offset >= seq.size()) return;
  SymbolId observed = seq[offset];
  for (const auto& [sym, child] : n.children) {
    if (IsWildcard(sym) || sym == observed) {
      WalkSupport(seq, offset + 1, static_cast<size_t>(child), best);
    }
  }
}

namespace {

/// Strategy selection: the trie wins when zero entries prune whole
/// subtrees (sparse matrices; exact-match supports behave like an
/// identity matrix), while on dense matrices nothing prunes and the flat
/// per-pattern sliding-window loop is faster (no recursion, better
/// locality). The 0.5 cut-off is empirical; see bench_micro.
bool UseTrieForMatrix(const CompatibilityMatrix& c) {
  return c.Sparsity() >= 0.5;
}

/// Per-sequence evaluator: either the trie or the naive per-pattern loop.
class BatchEvaluator {
 public:
  BatchEvaluator(const std::vector<Pattern>& patterns,
                 const CompatibilityMatrix* c)
      : patterns_(patterns), c_(c) {
    if (c == nullptr || UseTrieForMatrix(*c)) {
      trie_.emplace(patterns);
    }
  }

  void Best(const Sequence& seq, std::vector<double>* best) const {
    if (trie_.has_value()) {
      if (c_ != nullptr) {
        trie_->BestMatches(*c_, seq, best);
      } else {
        trie_->BestSupports(seq, best);
      }
      return;
    }
    best->resize(patterns_.size());
    for (size_t i = 0; i < patterns_.size(); ++i) {
      (*best)[i] = SequenceMatch(*c_, patterns_[i], seq);
    }
  }

 private:
  const std::vector<Pattern>& patterns_;
  const CompatibilityMatrix* c_;
  std::optional<PatternTrie> trie_;
};

Status AverageOverDb(const SequenceDatabase& db,
                     const std::vector<Pattern>& patterns,
                     const CompatibilityMatrix* c,
                     std::vector<double>* totals) {
  NMINE_PROFILE_SCOPE("count.db_batch");
  // Flat pre-resolved section so the per-sequence M(P,s) window-sliding
  // cost is attributed without any per-record path lookup (and without any
  // cost at all while the profiler is disabled).
  obs::Profiler::Section* window_section =
      obs::ResolveSection("count.window_slide");
  BatchEvaluator evaluator(patterns, c);
  totals->assign(patterns.size(), 0.0);
  std::vector<double> best;
  Status s = db.Scan(
      [&](const SequenceRecord& r) {
        obs::SectionTimer timer(window_section);
        evaluator.Best(r.symbols, &best);
        for (size_t i = 0; i < totals->size(); ++i) {
          (*totals)[i] += best[i];
        }
      },
      /*restart=*/[&] { totals->assign(patterns.size(), 0.0); });
  if (!s.ok()) return s;
  const double n = static_cast<double>(db.NumSequences());
  if (n > 0) {
    for (double& t : *totals) t /= n;
  }
  return Status::Ok();
}

std::vector<double> AverageOverRecords(
    const std::vector<SequenceRecord>& records,
    const std::vector<Pattern>& patterns, const CompatibilityMatrix* c) {
  NMINE_PROFILE_SCOPE("count.records_batch");
  obs::Profiler::Section* window_section =
      obs::ResolveSection("count.window_slide");
  BatchEvaluator evaluator(patterns, c);
  std::vector<double> totals(patterns.size(), 0.0);
  std::vector<double> best;
  for (const SequenceRecord& r : records) {
    obs::SectionTimer timer(window_section);
    evaluator.Best(r.symbols, &best);
    for (size_t i = 0; i < totals.size(); ++i) {
      totals[i] += best[i];
    }
  }
  const double n = static_cast<double>(records.size());
  if (n > 0) {
    for (double& t : totals) t /= n;
  }
  return totals;
}

}  // namespace

Status TryCountMatches(const SequenceDatabase& db,
                       const CompatibilityMatrix& c,
                       const std::vector<Pattern>& patterns,
                       std::vector<double>* values) {
  return AverageOverDb(db, patterns, &c, values);
}

Status TryCountSupports(const SequenceDatabase& db,
                        const std::vector<Pattern>& patterns,
                        std::vector<double>* values) {
  return AverageOverDb(db, patterns, nullptr, values);
}

std::vector<double> CountMatches(const SequenceDatabase& db,
                                 const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns) {
  std::vector<double> values;
  Status s = AverageOverDb(db, patterns, &c, &values);
  NMINE_CHECK(s.ok(), "CountMatches on a fallible database failed; use "
                      "TryCountMatches to handle scan errors");
  return values;
}

std::vector<double> CountSupports(const SequenceDatabase& db,
                                  const std::vector<Pattern>& patterns) {
  std::vector<double> values;
  Status s = AverageOverDb(db, patterns, nullptr, &values);
  NMINE_CHECK(s.ok(), "CountSupports on a fallible database failed; use "
                      "TryCountSupports to handle scan errors");
  return values;
}

std::vector<double> CountMatchesInRecords(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<Pattern>& patterns) {
  return AverageOverRecords(records, patterns, &c);
}

std::vector<double> CountSupportsInRecords(
    const std::vector<SequenceRecord>& records,
    const std::vector<Pattern>& patterns) {
  return AverageOverRecords(records, patterns, nullptr);
}

}  // namespace nmine
