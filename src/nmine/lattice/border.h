#ifndef NMINE_LATTICE_BORDER_H_
#define NMINE_LATTICE_BORDER_H_

#include <cstddef>
#include <vector>

#include "nmine/core/pattern.h"

namespace nmine {

/// A border in the sub-/super-pattern lattice (Mannila & Toivonen's notion,
/// Section 3): an antichain of patterns, maintained as the set of *maximal*
/// elements. The paper uses two: FQT (maximal known-frequent patterns) and
/// INFQT (maximal ambiguous patterns).
///
/// Invariant: no element is a subpattern of another element.
class Border {
 public:
  Border() = default;

  /// Inserts `p`, dropping it if it is subsumed (a subpattern of an existing
  /// element) and evicting existing elements that `p` subsumes. This is the
  /// "remove from FQT any sub-pattern of P" maintenance of Algorithm 4.2.
  /// Returns true if `p` became a border element.
  bool Insert(const Pattern& p);

  /// True if `p` lies on or below the border (is a subpattern of some
  /// element, or an element itself).
  bool Covers(const Pattern& p) const;

  /// True if `p` is itself a border element.
  bool ContainsElement(const Pattern& p) const;

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  void clear() { elements_.clear(); }

  /// Maximum number of non-eternal symbols among elements (0 when empty).
  size_t MaxLevel() const;
  /// Minimum number of non-eternal symbols among elements (0 when empty).
  size_t MinLevel() const;

  const std::vector<Pattern>& elements() const { return elements_; }

  /// Elements sorted by (length, lexicographic).
  std::vector<Pattern> ToSortedVector() const;

 private:
  std::vector<Pattern> elements_;
};

}  // namespace nmine

#endif  // NMINE_LATTICE_BORDER_H_
