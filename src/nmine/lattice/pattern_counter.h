#ifndef NMINE_LATTICE_PATTERN_COUNTER_H_
#define NMINE_LATTICE_PATTERN_COUNTER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "nmine/core/column_index.h"
#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/match.h"
#include "nmine/core/match_kernel.h"
#include "nmine/core/pattern.h"
#include "nmine/db/sequence_database.h"
#include "nmine/exec/policy.h"
#include "nmine/exec/sharded_reduce.h"

namespace nmine {

/// Prefix-sharing counter for batches of candidate patterns.
///
/// A batch of candidates (one Apriori level, or one border-collapsing probe
/// set) is arranged in a trie keyed by pattern positions (the eternal
/// symbol is an ordinary edge label). For every window offset of a
/// sequence, one depth-first walk evaluates all candidates at once,
/// multiplying compatibility factors and short-circuiting on zero, so
/// candidates sharing a prefix share the work. Semantics are identical to
/// calling SequenceMatch per pattern (the naive oracle used in tests).
class PatternTrie {
 public:
  /// Builds a trie over `patterns`. Duplicates are allowed (they share a
  /// node and both receive results).
  explicit PatternTrie(const std::vector<Pattern>& patterns);

  size_t num_patterns() const { return num_patterns_; }

  /// Sets (*best)[i] to the match of pattern i in `seq` (Definition 3.6).
  /// `best` is resized to the number of patterns.
  void BestMatches(const CompatibilityMatrix& c, const Sequence& seq,
                   std::vector<double>* best) const;

  /// Binary support variant: (*best)[i] is 1.0 if pattern i occurs exactly
  /// in `seq`, else 0.0.
  void BestSupports(const Sequence& seq, std::vector<double>* best) const;

  /// Scan-loop variants: `best` must hold num_patterns() zeros (the caller
  /// hoists the resize/zero and the column index out of the per-record
  /// loop), and leaf runs go through the process-wide match kernel.
  void BestMatchesInto(const CompatibilityMatrix& c, const Sequence& seq,
                       ColumnIndex* cols, double* best) const;
  void BestSupportsInto(const Sequence& seq, double* best) const;

 private:
  struct Node {
    // Sorted by symbol for deterministic traversal; small linear scans beat
    // hashing at the fan-outs seen in mining workloads.
    std::vector<std::pair<SymbolId, int32_t>> children;
    std::vector<int32_t> pattern_indices;  // patterns ending at this node
    // Leaf run: this node's childless single-pattern non-wildcard children,
    // packed into leaf_syms_/leaf_pattern_idx_ so the match kernel can
    // finish them as one vector multiply instead of |run| recursive calls.
    uint32_t leaf_first = 0;
    uint32_t leaf_count = 0;
  };

  void WalkMatch(const MatchKernel& kernel, const double* const* cols,
                 const Sequence& seq, size_t offset, size_t node,
                 double product, double* best) const;
  void WalkSupport(const Sequence& seq, size_t offset, size_t node,
                   double* best) const;

  std::vector<Node> nodes_;
  std::vector<SymbolId> leaf_syms_;
  std::vector<int32_t> leaf_pattern_idx_;
  size_t num_patterns_ = 0;
};

/// Match of every pattern in `patterns` over the whole database
/// (Definition 3.7), computed in ONE scan. On failure `*values` is
/// meaningless; miners must surface the status instead of consuming the
/// partial counts. Retried scan attempts reset the accumulators via the
/// database's restart callback, so retries never double-count.
///
/// All counters take an exec::ExecPolicy: sequences are sharded across
/// worker threads and per-shard partial sums are merged in fixed shard
/// order, so results are bit-identical for every num_threads (including
/// the default serial policy) and the number of charged scans never
/// changes — only wall-clock time does.
///
/// When exec.run is set, the TryCount* variants refuse to start a scan for
/// an already-stopped run (kCancelled/kDeadlineExceeded, no scan charged)
/// and discard the accumulation of a scan stopped midway (the scan stays
/// charged; a resumed run repeats it).
Status TryCountMatches(const SequenceDatabase& db,
                       const CompatibilityMatrix& c,
                       const std::vector<Pattern>& patterns,
                       std::vector<double>* values,
                       const exec::ExecPolicy& exec = {});

/// Support of every pattern over the whole database, in one scan.
Status TryCountSupports(const SequenceDatabase& db,
                        const std::vector<Pattern>& patterns,
                        std::vector<double>* values,
                        const exec::ExecPolicy& exec = {});

/// Convenience wrappers for infallible (in-memory) databases: tests,
/// examples, and benches. Scan errors are impossible there; fallible
/// databases must go through the TryCount* variants.
std::vector<double> CountMatches(const SequenceDatabase& db,
                                 const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns,
                                 const exec::ExecPolicy& exec = {});

/// Support of every pattern over the whole database, in one scan.
std::vector<double> CountSupports(const SequenceDatabase& db,
                                  const std::vector<Pattern>& patterns,
                                  const exec::ExecPolicy& exec = {});

/// The per-record counting kernel behind TryCountMatches/TryCountSupports,
/// exported for out-of-process scan sharding (distributed workers). A
/// kernel is built once per candidate batch (it owns the trie-vs-flat
/// strategy choice and the prepared pattern set) and hands out fresh
/// per-shard RecordFns — fold one exec shard's records, in order, into a
/// zeroed partial of num_patterns() doubles, exactly as ShardedScanReducer
/// does. A worker that merges those partials in ascending shard order
/// reproduces the serial counters bit for bit.
class BatchCountKernel {
 public:
  /// `c` == nullptr counts binary supports; otherwise matches under `c`.
  /// Both `patterns` and `c` must outlive the kernel.
  BatchCountKernel(const std::vector<Pattern>& patterns,
                   const CompatibilityMatrix* c);
  ~BatchCountKernel();
  BatchCountKernel(const BatchCountKernel&) = delete;
  BatchCountKernel& operator=(const BatchCountKernel&) = delete;

  /// A fresh kernel with fresh scratch; safe to call concurrently.
  exec::RecordFn MakeRecordFn() const;

  size_t num_patterns() const { return num_patterns_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  size_t num_patterns_ = 0;
};

/// In-memory variants used for the sample (no scan is charged).
std::vector<double> CountMatchesInRecords(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<Pattern>& patterns, const exec::ExecPolicy& exec = {});
std::vector<double> CountSupportsInRecords(
    const std::vector<SequenceRecord>& records,
    const std::vector<Pattern>& patterns, const exec::ExecPolicy& exec = {});

}  // namespace nmine

#endif  // NMINE_LATTICE_PATTERN_COUNTER_H_
