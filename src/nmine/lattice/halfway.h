#ifndef NMINE_LATTICE_HALFWAY_H_
#define NMINE_LATTICE_HALFWAY_H_

#include <cstddef>
#include <vector>

#include "nmine/core/pattern.h"

namespace nmine {

/// Algorithm 4.4 (Halfway): all i-patterns that are superpatterns of `p1`
/// and subpatterns of `p2`, where i = ceil((k1 + k2) / 2) and k1, k2 are
/// the non-eternal symbol counts of p1, p2. Preconditions: p1 is a
/// subpattern of p2 and k1 < k2. Returns at most `cap` distinct patterns
/// (the memory budget of Algorithm 4.3); deterministic order.
///
/// When `contiguous` is true, only gap-free halfway patterns are produced
/// (the contiguous mining mode restricts the lattice to substrings).
std::vector<Pattern> HalfwayPatterns(const Pattern& p1, const Pattern& p2,
                                     bool contiguous, size_t cap);

/// The probing order of Algorithm 4.3: levels of [lo, hi] arranged by
/// collapsing power — the halfway level first (ceil of the midpoint, as in
/// Algorithm 4.4), then the two quarterway levels, then the 1/8 levels,
/// etc. (breadth-first bisection). Every level in [lo, hi] appears exactly
/// once. Example: BisectionOrder(1, 9) = {5, 3, 8, 2, 4, 7, 9, 1, 6}.
std::vector<size_t> BisectionOrder(size_t lo, size_t hi);

}  // namespace nmine

#endif  // NMINE_LATTICE_HALFWAY_H_
