#ifndef NMINE_LATTICE_CANDIDATE_GEN_H_
#define NMINE_LATTICE_CANDIDATE_GEN_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "nmine/core/pattern.h"

namespace nmine {

/// Shape of the pattern search space.
///
/// Two modes are used in the experiments (see DESIGN.md):
///  * gapped (`max_gap > 0`): patterns may contain runs of up to `max_gap`
///    eternal symbols between non-eternal ones — faithful to Definition 3.2
///    (e.g. the Zinc-Finger signature C**C...H**H);
///  * contiguous (`max_gap == 0`): no eternal symbols; required for the
///    long-pattern experiments where the gapped lattice is astronomically
///    large.
struct PatternSpaceOptions {
  /// Maximum total pattern length l (including eternal symbols).
  size_t max_span = 32;
  /// Maximum number of consecutive eternal symbols between two non-eternal
  /// symbols. 0 means contiguous patterns only.
  size_t max_gap = 0;
};

/// True if `p` lies inside the bounded pattern space: length <= max_span
/// and no eternal run longer than max_gap.
bool InSpace(const Pattern& p, const PatternSpaceOptions& opts);

/// The level-1 candidates: one 1-pattern per symbol.
std::vector<Pattern> Level1Candidates(const std::vector<SymbolId>& symbols);

/// All right-extensions of `p`: append g eternal symbols (0 <= g <=
/// max_gap) followed by one symbol from `symbols`, subject to
/// `opts.max_span`. Every (k+1)-pattern is the right-extension of exactly
/// one k-pattern (its "generating prefix": drop the last symbol and the
/// trailing gap), so generating from all frequent k-patterns enumerates
/// each candidate exactly once.
std::vector<Pattern> RightExtensions(const Pattern& p,
                                     const std::vector<SymbolId>& symbols,
                                     const PatternSpaceOptions& opts);

/// Generating prefix of `p`: `p` minus its last non-eternal symbol and the
/// eternal run before it. Returns an empty Pattern for 1-patterns.
Pattern GeneratingPrefix(const Pattern& p);

/// Level-(k+1) candidates from the frequent level-k patterns `level_k`,
/// Apriori-pruned: a candidate survives iff every immediate subpattern
/// *inside the pattern space* satisfies `subpattern_ok` (membership in
/// "frequent", or in "frequent-or-ambiguous" during the sample phase).
/// Subpatterns that fall outside the space (e.g. deleting an interior
/// symbol merges two gaps past max_gap) were never counted and cannot be
/// used for pruning. Output order is deterministic.
/// At most `max_out` candidates are returned (generation stops at the
/// cap); callers treat an output of exactly `max_out` as truncation.
std::vector<Pattern> NextLevelCandidates(
    const std::vector<Pattern>& level_k,
    const std::vector<SymbolId>& symbols, const PatternSpaceOptions& opts,
    const std::function<bool(const Pattern&)>& subpattern_ok,
    size_t max_out = std::numeric_limits<size_t>::max());

}  // namespace nmine

#endif  // NMINE_LATTICE_CANDIDATE_GEN_H_
