#include "nmine/lattice/border.h"

#include <algorithm>

namespace nmine {

bool Border::Insert(const Pattern& p) {
  for (const Pattern& e : elements_) {
    if (p.IsSubpatternOf(e)) {
      return false;  // subsumed by an existing maximal element
    }
  }
  // p is maximal; evict elements it subsumes.
  elements_.erase(std::remove_if(elements_.begin(), elements_.end(),
                                 [&p](const Pattern& e) {
                                   return e.IsSubpatternOf(p);
                                 }),
                  elements_.end());
  elements_.push_back(p);
  return true;
}

bool Border::Covers(const Pattern& p) const {
  for (const Pattern& e : elements_) {
    if (p.IsSubpatternOf(e)) return true;
  }
  return false;
}

bool Border::ContainsElement(const Pattern& p) const {
  return std::find(elements_.begin(), elements_.end(), p) != elements_.end();
}

size_t Border::MaxLevel() const {
  size_t level = 0;
  for (const Pattern& e : elements_) {
    level = std::max(level, e.NumSymbols());
  }
  return level;
}

size_t Border::MinLevel() const {
  if (elements_.empty()) return 0;
  size_t level = elements_.front().NumSymbols();
  for (const Pattern& e : elements_) {
    level = std::min(level, e.NumSymbols());
  }
  return level;
}

std::vector<Pattern> Border::ToSortedVector() const {
  std::vector<Pattern> out = elements_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nmine
