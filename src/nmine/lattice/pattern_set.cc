#include "nmine/lattice/pattern_set.h"

#include <algorithm>

namespace nmine {

PatternSet::PatternSet(const std::vector<Pattern>& patterns) {
  for (const Pattern& p : patterns) {
    Insert(p);
  }
}

std::vector<Pattern> PatternSet::ToSortedVector() const {
  std::vector<Pattern> out(set_.begin(), set_.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t PatternSet::IntersectionSize(const PatternSet& other) const {
  const PatternSet& small = size() <= other.size() ? *this : other;
  const PatternSet& large = size() <= other.size() ? other : *this;
  size_t n = 0;
  for (const Pattern& p : small) {
    if (large.Contains(p)) ++n;
  }
  return n;
}

}  // namespace nmine
