#include "nmine/lattice/halfway.h"

#include <cassert>
#include <deque>

#include "nmine/lattice/pattern_set.h"

namespace nmine {
namespace {

/// Offsets at which p1 embeds into p2 (Definition 3.3 alignments).
std::vector<size_t> EmbeddingOffsets(const Pattern& p1, const Pattern& p2) {
  std::vector<size_t> offsets;
  if (p1.length() > p2.length()) return offsets;
  const size_t max_offset = p2.length() - p1.length();
  for (size_t j = 0; j <= max_offset; ++j) {
    bool ok = true;
    for (size_t i = 0; i < p1.length(); ++i) {
      SymbolId mine = p1[i];
      if (!IsWildcard(mine) && mine != p2[i + j]) {
        ok = false;
        break;
      }
    }
    if (ok) offsets.push_back(j);
  }
  return offsets;
}

/// Emits the pattern obtained from p2 by keeping exactly the non-eternal
/// positions in `keep` (a sorted position list) and blanking the rest.
void EmitKept(const Pattern& p2, const std::vector<size_t>& keep,
              PatternSet* out, std::vector<Pattern>* ordered, size_t cap) {
  if (ordered->size() >= cap) return;
  std::vector<SymbolId> body(p2.length(), kWildcard);
  for (size_t pos : keep) {
    body[pos] = p2[pos];
  }
  std::optional<Pattern> q = Pattern::Trimmed(std::move(body));
  if (q.has_value() && out->Insert(*q)) {
    ordered->push_back(std::move(*q));
  }
}

}  // namespace

std::vector<Pattern> HalfwayPatterns(const Pattern& p1, const Pattern& p2,
                                     bool contiguous, size_t cap) {
  assert(p1.IsSubpatternOf(p2));
  const size_t k1 = p1.NumSymbols();
  const size_t k2 = p2.NumSymbols();
  assert(k1 < k2);
  const size_t target = (k1 + k2 + 1) / 2;  // ceil((k1 + k2) / 2)

  PatternSet seen;
  std::vector<Pattern> ordered;

  if (contiguous) {
    // Substrings of p2 of length `target` that contain p1's embedding.
    for (size_t j : EmbeddingOffsets(p1, p2)) {
      if (target < p1.length() || target > p2.length()) continue;
      size_t lo = (j + p1.length() > target) ? j + p1.length() - target : 0;
      size_t hi = j;
      if (hi + target > p2.length()) hi = p2.length() - target;
      for (size_t a = lo; a <= hi && ordered.size() < cap; ++a) {
        std::vector<size_t> keep;
        keep.reserve(target);
        for (size_t t = a; t < a + target; ++t) keep.push_back(t);
        EmitKept(p2, keep, &seen, &ordered, cap);
      }
    }
    return ordered;
  }

  // Gapped mode: fix an embedding of p1 into p2; keep all positions backing
  // p1's non-eternal symbols, then choose (target - k1) of p2's remaining
  // non-eternal positions.
  for (size_t j : EmbeddingOffsets(p1, p2)) {
    std::vector<size_t> required;
    for (size_t i = 0; i < p1.length(); ++i) {
      if (!IsWildcard(p1[i])) required.push_back(i + j);
    }
    std::vector<size_t> optional_pos;
    for (size_t t = 0; t < p2.length(); ++t) {
      if (IsWildcard(p2[t])) continue;
      bool is_required = false;
      for (size_t r : required) {
        if (r == t) {
          is_required = true;
          break;
        }
      }
      if (!is_required) optional_pos.push_back(t);
    }
    const size_t r = target - k1;  // extras to keep
    if (r > optional_pos.size()) continue;
    // Enumerate r-combinations of optional_pos in lexicographic order.
    std::vector<size_t> idx(r);
    for (size_t i = 0; i < r; ++i) idx[i] = i;
    while (ordered.size() < cap) {
      std::vector<size_t> keep = required;
      for (size_t i : idx) keep.push_back(optional_pos[i]);
      EmitKept(p2, keep, &seen, &ordered, cap);
      if (r == 0) break;
      // Advance the combination.
      size_t i = r;
      while (i > 0) {
        --i;
        if (idx[i] != i + optional_pos.size() - r) {
          ++idx[i];
          for (size_t t = i + 1; t < r; ++t) idx[t] = idx[t - 1] + 1;
          break;
        }
        if (i == 0) {
          i = r;  // exhausted
          break;
        }
      }
      if (i == r) break;
    }
    if (ordered.size() >= cap) break;
  }
  return ordered;
}

std::vector<size_t> BisectionOrder(size_t lo, size_t hi) {
  std::vector<size_t> order;
  if (lo > hi) return order;
  std::deque<std::pair<size_t, size_t>> queue;
  queue.emplace_back(lo, hi);
  while (!queue.empty()) {
    auto [a, b] = queue.front();
    queue.pop_front();
    size_t mid = (a + b + 1) / 2;
    order.push_back(mid);
    if (mid > a) queue.emplace_back(a, mid - 1);
    if (mid < b) queue.emplace_back(mid + 1, b);
  }
  return order;
}

}  // namespace nmine
