#ifndef NMINE_STATS_ROBUST_H_
#define NMINE_STATS_ROBUST_H_

#include <vector>

namespace nmine {

/// Robust location/spread estimators for small noisy samples — the bench
/// harness summarizes repetition timings with these because median/MAD are
/// insensitive to the occasional scheduler hiccup that ruins a mean/stddev.

/// Median of `values` (0.0 for an empty sample); averages the two middle
/// elements for even sizes. Does not modify the input.
double Median(const std::vector<double>& values);

/// Median absolute deviation from the median: median(|x_i - median(x)|).
/// 0.0 for samples of size < 2.
double MedianAbsDeviation(const std::vector<double>& values);

}  // namespace nmine

#endif  // NMINE_STATS_ROBUST_H_
