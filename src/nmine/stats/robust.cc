#include "nmine/stats/robust.h"

#include <algorithm>
#include <cmath>

namespace nmine {
namespace {

/// Median by nth_element; takes its argument by value as scratch space.
double MedianInPlace(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
  return (lower + upper) / 2.0;
}

}  // namespace

double Median(const std::vector<double>& values) {
  return MedianInPlace(values);
}

double MedianAbsDeviation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double med = MedianInPlace(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - med));
  return MedianInPlace(std::move(deviations));
}

}  // namespace nmine
