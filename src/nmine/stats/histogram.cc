#include "nmine/stats/histogram.h"

#include <cassert>

namespace nmine {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(bins > 0);
  assert(lo < hi);
}

size_t Histogram::BinIndex(double value) const {
  if (value < lo_) return 0;
  size_t bin = static_cast<size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  return bin;
}

void Histogram::Add(double value) {
  if (total_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    if (value < min_seen_) min_seen_ = value;
    if (value > max_seen_) max_seen_ = value;
  }
  ++counts_[BinIndex(value)];
  ++total_;
  sum_ += value;
}

double Histogram::BinLow(size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::BinHigh(size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::Fraction(size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::CumulativeFraction(double x) const {
  if (total_ == 0) return 0.0;
  size_t last = BinIndex(x);
  uint64_t acc = 0;
  for (size_t b = 0; b <= last; ++b) {
    acc += counts_[b];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace nmine
