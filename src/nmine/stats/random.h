#ifndef NMINE_STATS_RANDOM_H_
#define NMINE_STATS_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace nmine {

/// Deterministic random number generator used by every randomized component
/// (generators, samplers, noise channels). All experiments take explicit
/// seeds so results are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double UniformDouble() { return unit_(engine_); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) {
    std::uniform_int_distribution<uint64_t> d(0, n - 1);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Derives an independent child generator; handy for giving each
  /// experiment repetition its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Samples from a fixed discrete distribution by inverse-CDF binary search.
/// Weights need not be normalized.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to its weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace nmine

#endif  // NMINE_STATS_RANDOM_H_
