#ifndef NMINE_STATS_HISTOGRAM_H_
#define NMINE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nmine {

/// Fixed-width-bin histogram over [lo, hi). Values outside the range are
/// clamped into the first/last bin. Used for the missing-pattern
/// distribution of Figure 13 and diagnostic summaries.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Preconditions:
  /// bins > 0, lo < hi.
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);

  size_t num_bins() const { return counts_.size(); }
  uint64_t count(size_t bin) const { return counts_[bin]; }
  uint64_t total() const { return total_; }

  /// Inclusive lower edge of `bin`.
  double BinLow(size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double BinHigh(size_t bin) const;

  /// Fraction of observations in `bin` (0 when empty).
  double Fraction(size_t bin) const;

  /// Fraction of observations in bins up to and including the bin that
  /// contains x (bin-resolution approximation of the CDF).
  double CumulativeFraction(double x) const;

  double min_seen() const { return min_seen_; }
  double max_seen() const { return max_seen_; }
  double mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

 private:
  size_t BinIndex(double value) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace nmine

#endif  // NMINE_STATS_HISTOGRAM_H_
