#include "nmine/stats/random.h"

#include <algorithm>
#include <cassert>

namespace nmine {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  assert(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(total > 0.0);
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace nmine
