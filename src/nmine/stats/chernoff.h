#ifndef NMINE_STATS_CHERNOFF_H_
#define NMINE_STATS_CHERNOFF_H_

#include <cstddef>
#include <string>

namespace nmine {

/// Label assigned to a pattern after the sample phase (Claim 4.1).
enum class PatternLabel {
  kFrequent,    // sample match > min_match + epsilon
  kAmbiguous,   // within [min_match - epsilon, min_match + epsilon]
  kInfrequent,  // sample match < min_match - epsilon
};

const char* ToString(PatternLabel label);

/// The additive Chernoff/Hoeffding bound of Section 4:
///
///   epsilon = sqrt(R^2 * ln(1/delta) / (2 n))
///
/// With probability 1 - delta the true mean of a random variable with
/// spread R lies within epsilon of the mean of n independent observations.
/// `spread` is R (1 by default; Claim 4.2 restricts it to the minimum
/// single-symbol match of the pattern). Preconditions: n > 0,
/// 0 < delta < 1, spread >= 0.
double ChernoffEpsilon(double spread, double delta, size_t n);

/// Three-way classification of a pattern from its match in the sample
/// (Claim 4.1). Boundary values are labelled ambiguous, the conservative
/// choice (they get re-examined against the full database).
PatternLabel ClassifyMatch(double sample_match, double min_match,
                           double epsilon);

}  // namespace nmine

#endif  // NMINE_STATS_CHERNOFF_H_
