#include "nmine/stats/chernoff.h"

#include <cassert>
#include <cmath>

namespace nmine {

const char* ToString(PatternLabel label) {
  switch (label) {
    case PatternLabel::kFrequent:
      return "frequent";
    case PatternLabel::kAmbiguous:
      return "ambiguous";
    case PatternLabel::kInfrequent:
      return "infrequent";
  }
  return "unknown";
}

double ChernoffEpsilon(double spread, double delta, size_t n) {
  assert(n > 0);
  assert(delta > 0.0 && delta < 1.0);
  assert(spread >= 0.0);
  return std::sqrt(spread * spread * std::log(1.0 / delta) /
                   (2.0 * static_cast<double>(n)));
}

PatternLabel ClassifyMatch(double sample_match, double min_match,
                           double epsilon) {
  if (sample_match > min_match + epsilon) return PatternLabel::kFrequent;
  if (sample_match < min_match - epsilon) return PatternLabel::kInfrequent;
  return PatternLabel::kAmbiguous;
}

}  // namespace nmine
