#include "nmine/exec/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "nmine/exec/thread_pool.h"
#include "nmine/runtime/run_control.h"

namespace nmine {
namespace exec {

void ParallelFor(size_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn,
                 const runtime::RunControl* run) {
  if (count == 0) return;
  size_t threads = ResolveNumThreads(num_threads);
  if (threads > count) threads = count;
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      if (runtime::StopRequested(run)) return;
      fn(i);
    }
    return;
  }

  // One shared claim counter; the caller participates, so only
  // threads - 1 pool tasks are submitted. Each task drains indices until
  // the counter is exhausted (or the run is stopped), then reports done;
  // the caller waits for every helper so fn's effects are visible (mutex
  // pairs acquire with release) before ParallelFor returns.
  struct Shared {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t active = 0;
    size_t count = 0;
    const std::function<void(size_t)>* fn = nullptr;
    const runtime::RunControl* run = nullptr;
  };
  Shared shared;
  shared.count = count;
  shared.fn = &fn;
  shared.run = run;

  auto drain = [&shared] {
    for (;;) {
      if (runtime::StopRequested(shared.run)) return;
      size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared.count) return;
      (*shared.fn)(i);
    }
  };

  size_t helpers = threads - 1;
  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(helpers);
  {
    std::lock_guard<std::mutex> lock(shared.mutex);
    shared.active = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([&shared, drain] {
      drain();
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.active == 0) shared.done_cv.notify_all();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&shared] { return shared.active == 0; });
}

}  // namespace exec
}  // namespace nmine
