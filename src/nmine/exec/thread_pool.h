#ifndef NMINE_EXEC_THREAD_POOL_H_
#define NMINE_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nmine {
namespace exec {

/// Number of hardware threads, never 0.
size_t HardwareThreads();

/// Resolves a num_threads knob: 0 means "use the hardware concurrency".
size_t ResolveNumThreads(size_t requested);

/// A growable pool of worker threads draining a shared task queue.
///
/// The process-wide instance (Shared()) is created lazily and leaked on
/// exit, like obs::Profiler::Global(), so tasks submitted from static
/// destructors never touch a destroyed pool. Workers are only ever
/// added, never removed: EnsureWorkers(n) grows the pool to at least n
/// threads, so a later request for more parallelism reuses the threads
/// already spawned. Callers that need completion semantics build them on
/// top of Submit (see ParallelFor).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by all parallel scans. Starts empty;
  /// workers are spawned on first use via EnsureWorkers.
  static ThreadPool& Shared();

  /// Grows the pool to at least n worker threads AVAILABLE FOR TASKS
  /// (reserved service workers are on top). Never shrinks.
  void EnsureWorkers(size_t n);

  /// Permanently dedicates one additional worker to a long-lived service
  /// task (e.g. the status server's accept loop) and spawns it. Every
  /// later EnsureWorkers(n) is raised by the reservation count, so a
  /// parked service never eats into the parallelism a scan asked for.
  /// Call ReserveWorker() BEFORE Submit()ing the service task.
  void ReserveWorker();

  size_t num_workers() const;
  size_t reserved_workers() const;

  /// Enqueues a task for execution on some worker thread. Tasks must not
  /// block on other queued tasks (workers are a finite resource).
  ///
  /// If the submitting thread carries an active obs::TraceContext, the
  /// task is wrapped so the same context is installed on the worker for
  /// the task's duration — request attribution follows work across the
  /// pool (see obs/trace_context.h).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t reserved_ = 0;
  bool stop_ = false;
};

}  // namespace exec
}  // namespace nmine

#endif  // NMINE_EXEC_THREAD_POOL_H_
