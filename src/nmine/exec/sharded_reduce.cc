#include "nmine/exec/sharded_reduce.h"

#include <algorithm>
#include <utility>

#include "nmine/exec/parallel_for.h"
#include "nmine/runtime/run_control.h"

namespace nmine {
namespace exec {

namespace {

void MergeInto(std::vector<double>* totals, const std::vector<double>& partial) {
  for (size_t i = 0; i < totals->size(); ++i) {
    (*totals)[i] += partial[i];
  }
}

}  // namespace

ShardedScanReducer::ShardedScanReducer(size_t accum_size,
                                       const ExecPolicy& policy,
                                       RecordFnFactory factory)
    : accum_size_(accum_size),
      shard_size_(std::max<size_t>(1, policy.shard_size)),
      threads_(policy.ResolvedThreads()),
      run_(policy.run),
      factory_(std::move(factory)) {
  totals_.assign(accum_size_, 0.0);
  if (threads_ <= 1) {
    BeginSerialShard();
  } else {
    // Two shards per thread bounds buffered records (and partial vectors)
    // per wave while leaving enough shards to keep every worker busy.
    wave_.resize(2 * threads_);
    for (auto& shard : wave_) shard.reserve(shard_size_);
    partials_.resize(wave_.size());
  }
}

void ShardedScanReducer::BeginSerialShard() {
  serial_fn_ = factory_();
  serial_partial_.assign(accum_size_, 0.0);
  serial_count_ = 0;
}

void ShardedScanReducer::Consume(const SequenceRecord& record) {
  // Once stopped, records stream past unprocessed: the scan completes (so
  // database retry accounting stays simple) but no more kernel work runs,
  // and the now-meaningless totals are discarded by the caller.
  if (stopped_) return;
  if (threads_ <= 1) {
    serial_fn_(record, &serial_partial_);
    if (++serial_count_ == shard_size_) {
      MergeInto(&totals_, serial_partial_);
      BeginSerialShard();
      stopped_ = runtime::StopRequested(run_);
    }
    return;
  }
  wave_[current_shard_].push_back(record);
  if (wave_[current_shard_].size() == shard_size_) {
    ++current_shard_;
    if (current_shard_ == wave_.size()) FlushWave();
  }
}

void ShardedScanReducer::FlushWave() {
  size_t n_shards = current_shard_;
  if (n_shards < wave_.size() && !wave_[n_shards].empty()) ++n_shards;
  if (n_shards == 0) return;
  if (runtime::StopRequested(run_)) stopped_ = true;
  if (!stopped_) {
    ParallelFor(
        threads_, n_shards,
        [this](size_t i) {
          partials_[i].assign(accum_size_, 0.0);
          RecordFn fn = factory_();
          for (const SequenceRecord& r : wave_[i]) {
            fn(r, &partials_[i]);
          }
        },
        run_);
    if (runtime::StopRequested(run_)) stopped_ = true;
  }
  if (!stopped_) {
    // ParallelFor is a barrier, so merging in ascending shard order here
    // reproduces the serial grouping exactly. A stopped ParallelFor may
    // have skipped shards (stale partials), so merging is gated above.
    for (size_t i = 0; i < n_shards; ++i) {
      MergeInto(&totals_, partials_[i]);
    }
  }
  for (size_t i = 0; i < n_shards; ++i) wave_[i].clear();
  current_shard_ = 0;
}

void ShardedScanReducer::Restart() {
  totals_.assign(accum_size_, 0.0);
  stopped_ = runtime::StopRequested(run_);
  if (threads_ <= 1) {
    BeginSerialShard();
    return;
  }
  // No tasks are in flight between Consume calls (waves are synchronous),
  // so dropping the buffers cannot race with workers.
  for (auto& shard : wave_) shard.clear();
  current_shard_ = 0;
}

std::vector<double> ShardedScanReducer::Finish() {
  if (threads_ <= 1) {
    if (serial_count_ > 0 && !stopped_) MergeInto(&totals_, serial_partial_);
    BeginSerialShard();
  } else {
    FlushWave();
  }
  return std::move(totals_);
}

std::vector<double> ReduceRecords(const std::vector<SequenceRecord>& records,
                                  size_t accum_size, const ExecPolicy& policy,
                                  const RecordFnFactory& factory) {
  const size_t shard_size = std::max<size_t>(1, policy.shard_size);
  const size_t threads = policy.ResolvedThreads();
  const size_t n_shards = (records.size() + shard_size - 1) / shard_size;
  std::vector<double> totals(accum_size, 0.0);
  if (n_shards == 0) return totals;

  // Same wave structure as the streaming reducer, but shards are index
  // ranges into `records` — no copies. Stops between waves (and between
  // shards, inside ParallelFor) when policy.run is stopped; the partial
  // totals are then meaningless and the caller discards them.
  const size_t wave_width = threads <= 1 ? 1 : 2 * threads;
  std::vector<std::vector<double>> partials(std::min(wave_width, n_shards));
  for (size_t base = 0; base < n_shards; base += wave_width) {
    if (runtime::StopRequested(policy.run)) break;
    const size_t count = std::min(wave_width, n_shards - base);
    ParallelFor(
        threads, count,
        [&](size_t i) {
          partials[i].assign(accum_size, 0.0);
          RecordFn fn = factory();
          const size_t begin = (base + i) * shard_size;
          const size_t end = std::min(begin + shard_size, records.size());
          for (size_t r = begin; r < end; ++r) {
            fn(records[r], &partials[i]);
          }
        },
        policy.run);
    if (runtime::StopRequested(policy.run)) break;
    for (size_t i = 0; i < count; ++i) {
      MergeInto(&totals, partials[i]);
    }
  }
  return totals;
}

}  // namespace exec
}  // namespace nmine
