#ifndef NMINE_EXEC_POLICY_H_
#define NMINE_EXEC_POLICY_H_

#include <cstddef>

namespace nmine {

namespace runtime {
class RunControl;
}  // namespace runtime

namespace exec {

/// Number of hardware threads, never 0 (thread_pool.cc).
size_t HardwareThreads();

/// Resolves a num_threads knob: 0 means "use the hardware concurrency".
size_t ResolveNumThreads(size_t requested);

/// Records per shard: the unit of the deterministic reduction. Shard
/// boundaries depend only on this value (never on the thread count), so
/// the same shard size yields bit-identical results for every thread
/// count, including 1.
inline constexpr size_t kDefaultShardSize = 256;

/// How scan-shaped work is executed. The policy deliberately cannot
/// change WHAT is computed: per-shard partial results are always merged
/// in ascending shard order, so every setting produces the same bits and
/// only wall-clock time varies. The number of charged database scans is
/// likewise unaffected (parallelism splits the evaluation of one pass,
/// never the pass itself).
struct ExecPolicy {
  /// Worker threads to use (including the calling thread); 0 means
  /// "hardware concurrency", 1 runs inline with no pool involvement.
  size_t num_threads = 1;

  /// Records per shard. Changing it changes the floating-point grouping
  /// (within double rounding), so comparisons of stored values must use
  /// the same shard size on both sides. Leave at the default outside
  /// tests.
  size_t shard_size = kDefaultShardSize;

  /// Cooperative cancellation / deadline token, polled at shard
  /// boundaries. A stopped reduction skips remaining kernel work (its
  /// totals become meaningless — callers observe the stop through
  /// runtime::CheckRun and discard them). nullptr = never stop; the only
  /// cost is a null-pointer branch per shard.
  const runtime::RunControl* run = nullptr;

  size_t ResolvedThreads() const { return ResolveNumThreads(num_threads); }
};

}  // namespace exec
}  // namespace nmine

#endif  // NMINE_EXEC_POLICY_H_
