#ifndef NMINE_EXEC_PARALLEL_FOR_H_
#define NMINE_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace nmine {

namespace runtime {
class RunControl;
}  // namespace runtime

namespace exec {

/// Runs fn(i) for every i in [0, count) using up to num_threads threads:
/// the calling thread plus workers from ThreadPool::Shared(). Blocks
/// until every call has returned (a barrier), so by the time it returns
/// all writes made by fn are visible to the caller.
///
/// Indices are claimed dynamically from a shared counter, so the
/// ASSIGNMENT of indices to threads is nondeterministic — callers that
/// need deterministic results must make fn(i) write only to slot i of a
/// pre-sized output and combine slots in index order afterwards (see
/// ShardedScanReducer).
///
/// num_threads follows the ExecPolicy convention: 0 means hardware
/// concurrency, 1 runs the whole loop inline on the calling thread.
/// fn must not throw; it runs on pool workers with no unwinding path.
///
/// When `run` is non-null it is polled between index claims: once the run
/// is stopped (cancel or deadline) no NEW indices are claimed, though
/// in-flight fn calls finish (nothing is interrupted mid-record). Callers
/// must treat the loop's output as incomplete whenever run->StopRequested()
/// — check runtime::CheckRun afterwards and discard on non-OK.
void ParallelFor(size_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn,
                 const runtime::RunControl* run = nullptr);

}  // namespace exec
}  // namespace nmine

#endif  // NMINE_EXEC_PARALLEL_FOR_H_
