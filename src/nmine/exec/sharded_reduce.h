#ifndef NMINE_EXEC_SHARDED_REDUCE_H_
#define NMINE_EXEC_SHARDED_REDUCE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "nmine/core/sequence.h"
#include "nmine/exec/policy.h"

namespace nmine {
namespace exec {

/// Per-shard record kernel: folds one record into a partial accumulator
/// (already sized to accum_size, zero-initialized at shard start). The
/// kernel may carry mutable per-shard scratch in its closure — each shard
/// gets a FRESH kernel from the factory, so scratch is never shared
/// across threads.
using RecordFn = std::function<void(const SequenceRecord&, std::vector<double>*)>;

/// Builds a fresh kernel (with fresh scratch) for one shard. Called once
/// per shard, possibly concurrently from worker threads; everything it
/// captures by reference must be immutable during the reduction.
using RecordFnFactory = std::function<RecordFn()>;

/// Deterministic sharded sum over a stream of records (a database scan).
///
/// The record stream is cut into fixed-size shards (policy.shard_size
/// records each, in delivery order). Each shard folds its records — in
/// order — into a zeroed partial vector, and partials are added into the
/// running totals in ascending shard order. Because shard boundaries and
/// the merge order depend only on shard_size (never on the thread
/// count), the floating-point additions are grouped identically whether
/// the shards are evaluated inline (num_threads == 1) or on a pool:
/// results are bit-identical for every thread count.
///
/// Parallel mode buffers records into waves of 2 x threads shards; when
/// a wave fills, a blocking ParallelFor evaluates its shards and the
/// partials are merged in order before more records are consumed. The
/// producer (the database Scan visitor) therefore never runs concurrently
/// with an unfinished wave, which makes Restart() race-free: when the
/// database retries a failed attempt there are no outstanding tasks, so
/// dropping the buffers and zeroing the totals cannot race with workers.
///
/// Usage:
///   ShardedScanReducer reducer(k, policy, factory);
///   Status s = db.Scan([&](const SequenceRecord& r) { reducer.Consume(r); },
///                      [&] { reducer.Restart(); });
///   if (s.ok()) std::vector<double> totals = reducer.Finish();
class ShardedScanReducer {
 public:
  ShardedScanReducer(size_t accum_size, const ExecPolicy& policy,
                     RecordFnFactory factory);

  /// Feeds the next record of the scan. Call from the Scan visitor (one
  /// producer thread).
  void Consume(const SequenceRecord& record);

  /// Resets all accumulation to the pre-scan state. Call from the Scan
  /// restart callback so a retried attempt never double-counts.
  void Restart();

  /// Flushes any buffered records and returns the merged totals. Call
  /// once, after Scan returned OK.
  ///
  /// Cancellation: when policy.run is set it is polled at shard
  /// boundaries; once stopped, remaining kernel work is skipped (records
  /// keep streaming by, unprocessed). The totals are then meaningless —
  /// the caller must check runtime::CheckRun after the scan and discard
  /// them on non-OK, which TryCountMatches/TryCountSupports do.
  std::vector<double> Finish();

 private:
  void BeginSerialShard();
  void FlushWave();

  const size_t accum_size_;
  const size_t shard_size_;
  const size_t threads_;
  const runtime::RunControl* run_;
  bool stopped_ = false;
  RecordFnFactory factory_;

  std::vector<double> totals_;

  // Serial streaming state (threads_ == 1): one live shard at a time.
  RecordFn serial_fn_;
  std::vector<double> serial_partial_;
  size_t serial_count_ = 0;

  // Parallel streaming state: shard buffers for the current wave. Buffer
  // `current_shard_` is being filled; a wave flushes when all buffers are
  // full (or at Finish/Restart).
  std::vector<std::vector<SequenceRecord>> wave_;
  std::vector<std::vector<double>> partials_;
  size_t current_shard_ = 0;
};

/// Deterministic sharded sum over an in-memory record vector (no
/// copies: shards are index ranges). Same grouping contract as
/// ShardedScanReducer: results are bit-identical for every thread count
/// at a fixed shard_size. Partial vectors are bounded by one wave
/// (2 x threads shards), not by the total shard count.
std::vector<double> ReduceRecords(const std::vector<SequenceRecord>& records,
                                  size_t accum_size, const ExecPolicy& policy,
                                  const RecordFnFactory& factory);

}  // namespace exec
}  // namespace nmine

#endif  // NMINE_EXEC_SHARDED_REDUCE_H_
