#include "nmine/exec/thread_pool.h"

#include <utility>

#include "nmine/obs/trace_context.h"

namespace nmine {
namespace exec {

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ResolveNumThreads(size_t requested) {
  return requested == 0 ? HardwareThreads() : requested;
}

ThreadPool::ThreadPool(size_t num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: mining code may run during static destruction
  // (e.g. a bench harness flushing results), and joining workers there
  // would deadlock or touch freed state.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::EnsureWorkers(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < n + reserved_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::ReserveWorker() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++reserved_;
  workers_.emplace_back([this] { WorkerLoop(); });
}

size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

size_t ThreadPool::reserved_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_;
}

void ThreadPool::Submit(std::function<void()> task) {
  // Trace-context propagation: every pool task carries the submitting
  // thread's request identity onto whichever worker runs it, so spans,
  // log lines, and flight events inside ParallelFor bodies attribute to
  // the right job even when two jobs share the pool. Inactive contexts
  // (process-level work, service loops) skip the wrapper entirely.
  const obs::TraceContext& ctx = obs::CurrentTraceContext();
  if (ctx.active()) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext scope(ctx);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace exec
}  // namespace nmine
