#ifndef NMINE_OBS_PROFILER_H_
#define NMINE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nmine/obs/clock.h"

namespace nmine {
namespace obs {

/// Aggregate statistics for one profiled section.
struct ProfileStats {
  uint64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

/// Hierarchical in-process profiler.
///
/// Hot paths are instrumented with NMINE_PROFILE_SCOPE("name"); nested
/// scopes on the same thread form slash-separated paths (e.g.
/// "mine.collapse/phase3/phase3.scan"), so the snapshot reads as a call
/// tree. Aggregates (count / total / min / max ns) are lock-free and safe
/// to record from any thread.
///
/// Cost model: while the profiler is disabled (the default) a scope is one
/// relaxed atomic load and a branch — nothing is allocated, named, or
/// timed, so leaving instrumentation in release binaries is free (see
/// bench_micro). While enabled a scope pays two clock reads plus one
/// path lookup; per-record hot loops should use a pre-resolved Section
/// with SectionTimer instead of the macro.
class Profiler {
 public:
  /// One named section. Obtained from GetSection(); the reference is
  /// stable for the profiler's lifetime.
  class Section {
   public:
    void Record(int64_t ns) {
      count_.fetch_add(1, std::memory_order_relaxed);
      total_ns_.fetch_add(ns, std::memory_order_relaxed);
      int64_t observed = min_ns_.load(std::memory_order_relaxed);
      while (ns < observed &&
             !min_ns_.compare_exchange_weak(observed, ns,
                                            std::memory_order_relaxed)) {
      }
      observed = max_ns_.load(std::memory_order_relaxed);
      while (ns > observed &&
             !max_ns_.compare_exchange_weak(observed, ns,
                                            std::memory_order_relaxed)) {
      }
    }

    ProfileStats stats() const;
    const std::string& name() const { return *name_; }
    void Reset();

   private:
    friend class Profiler;
    explicit Section(const std::string* name) : name_(name) {}

    const std::string* name_;  // points at the registry's stable map key
    std::atomic<uint64_t> count_{0};
    std::atomic<int64_t> total_ns_{0};
    std::atomic<int64_t> min_ns_{INT64_MAX};
    std::atomic<int64_t> max_ns_{0};
  };

  /// The process-wide profiler the instrumentation records into.
  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Scopes only measure while enabled. Sections survive Disable() so a
  /// snapshot can be taken after the measured region. The calling thread
  /// is designated the "main" thread whose open section CurrentSection()
  /// reports.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers on first use; returns a stable reference.
  Section& GetSection(const std::string& name);

  /// Every section with at least one recording, sorted by path — nested
  /// scopes sort directly under their parent.
  std::vector<std::pair<std::string, ProfileStats>> Snapshot() const;

  /// {"sections": {"<path>": {"count": .., "total_ns": .., "min_ns": ..,
  ///  "max_ns": .., "mean_ns": ..}, ...}} — empty sections are skipped.
  std::string SnapshotJson() const;

  /// The section path currently open on the MAIN thread — the thread that
  /// called Enable() — or "" when idle. Used by the --progress heartbeat
  /// to name the current phase. Current-section state is kept per thread,
  /// so scan workers entering and leaving their own scopes never clobber
  /// the main thread's phase (a single shared pointer would be
  /// last-writer-wins under concurrency and the heartbeat would flicker
  /// between worker sections).
  std::string CurrentSection() const;

  /// Zeroes all aggregates; registrations and references stay valid.
  void Reset();

 private:
  friend class ProfileScope;

  /// Per-thread current-section slot. Owned by the profiler (registered
  /// on a thread's first scope and kept until process exit, so a reader
  /// never dereferences a freed state even after the thread has died).
  struct ThreadState {
    std::atomic<const std::string*> current{nullptr};
  };

  /// This thread's state, registering it on first use. Cached in a
  /// thread_local, so the common case is two loads.
  ThreadState* StateForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<ThreadState*> main_state_{nullptr};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Section>> sections_;
  std::vector<std::unique_ptr<ThreadState>> thread_states_;
};

/// RAII scope against the global profiler. Builds the hierarchical path
/// from the enclosing scopes on this thread. When the profiler is
/// disabled, construction is a single relaxed load.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name);
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope();

 private:
  Profiler::Section* section_ = nullptr;
  Profiler::ThreadState* state_ = nullptr;
  const std::string* prev_current_ = nullptr;
  size_t prev_path_size_ = 0;
  /// Start time on the shared monotonic clock (obs/clock.h) — the same
  /// base the tracer, telemetry sampler, and flight recorder stamp with,
  /// so profile totals reconcile with span and telemetry timestamps.
  int64_t start_ns_ = 0;
};

/// Flat timer for per-record hot loops: the section is resolved once by
/// the caller (nullptr when the profiler is disabled), so the loop body
/// pays only the two clock reads while measuring and nothing otherwise.
class SectionTimer {
 public:
  explicit SectionTimer(Profiler::Section* section) : section_(section) {
    if (section_ != nullptr) start_ns_ = MonotonicNowNs();
  }
  SectionTimer(const SectionTimer&) = delete;
  SectionTimer& operator=(const SectionTimer&) = delete;
  ~SectionTimer() {
    if (section_ != nullptr) {
      section_->Record(MonotonicNowNs() - start_ns_);
    }
  }

 private:
  Profiler::Section* section_;
  int64_t start_ns_ = 0;
};

/// Resolves a flat section for SectionTimer, or nullptr while disabled.
inline Profiler::Section* ResolveSection(const char* name) {
  Profiler& p = Profiler::Global();
  return p.enabled() ? &p.GetSection(name) : nullptr;
}

}  // namespace obs
}  // namespace nmine

#define NMINE_PROFILE_CONCAT_(a, b) a##b
#define NMINE_PROFILE_CONCAT(a, b) NMINE_PROFILE_CONCAT_(a, b)

/// Usage, at the top of a phase body or other labeled region:
///   NMINE_PROFILE_SCOPE("phase3.scan");
#define NMINE_PROFILE_SCOPE(name)                        \
  ::nmine::obs::ProfileScope NMINE_PROFILE_CONCAT(      \
      nmine_profile_scope_, __LINE__)(name)

#endif  // NMINE_OBS_PROFILER_H_
