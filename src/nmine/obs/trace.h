#ifndef NMINE_OBS_TRACE_H_
#define NMINE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nmine/obs/trace_context.h"

namespace nmine {
namespace obs {

class Counter;

/// One Chrome trace_event "complete" event (ph = "X"): a named span with
/// a start timestamp and duration in microseconds, plus string args.
/// `tid` is a process-unique lane id for the thread that produced the
/// span (assigned on first use per thread), so concurrent spans land on
/// separate rows in Perfetto. The trace/span id triple attributes the
/// span to one request (all zero = unattributed process-level work).
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int32_t tid = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// A process-unique small-integer lane id for the calling thread (>= 1,
/// assigned on first call). Used as the trace "tid" field.
int32_t ThreadLaneId();

/// Process-wide span collector. Disabled (and free apart from one atomic
/// load per span) until Start() is called; spans recorded while enabled
/// are buffered in memory and serialized by SnapshotJson() in Chrome
/// trace_event "JSON object format":
///
///   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
///                     "dur": ..., "pid": 1, "tid": N, "args": {...}}, ...],
///    "displayTimeUnit": "ms"}
///
/// The output loads directly in chrome://tracing and Perfetto.
///
/// Bounded buffer: events live in a ring of capacity() entries
/// (kDefaultCapacity = 64Ki unless SetCapacity() is called). When the
/// ring is full each new event overwrites the oldest one and the
/// `obs.trace.dropped` counter is incremented — a long-lived server
/// therefore holds the most recent ~64k spans at a bounded memory cost
/// instead of growing without limit. Size the ring via SetCapacity()
/// (or `nmine_server --trace-buffer`) if jobs emit more spans than the
/// default window keeps.
///
/// Wall-clock anchoring: event timestamps are monotonic microseconds
/// since the process epoch (obs/clock.h). Start() additionally records
/// the wall-clock time corresponding to timestamp zero (WallEpochUs());
/// TraceJson() emits timestamps shifted onto that wall-clock base so
/// traces exported from different processes (client and server) align on
/// one real-time axis.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 64 * 1024;

  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts capturing. When currently stopped, clears any buffered events
  /// and re-anchors the wall clock; when already started, a no-op (so a
  /// component restart inside a long-lived server never discards the
  /// buffer of another in-flight trace).
  void Start();
  /// Stops capturing (buffered events are kept for snapshotting).
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since Start() (0 when never started).
  int64_t NowUs() const;

  /// Wall-clock microseconds since the Unix epoch corresponding to trace
  /// timestamp 0 (0 when never started).
  int64_t WallEpochUs() const;

  /// Ring capacity in events; see the class comment for the bound's
  /// semantics.
  size_t capacity() const;
  /// Resizes the ring, keeping the most recent events that fit. Values
  /// below 1 are clamped to 1.
  void SetCapacity(size_t capacity);
  /// Events overwritten since Start() (also exported as the
  /// `obs.trace.dropped` counter).
  uint64_t dropped() const;

  /// Appends one complete event (no-op when disabled). Stamps the calling
  /// thread's lane id and trace context onto the event unless the caller
  /// already set them (tid != 0 / trace id halves nonzero).
  void AddComplete(TraceEvent event);

  size_t NumEvents() const;
  std::vector<TraceEvent> Events() const;

  /// All buffered events in trace_event JSON object format.
  std::string SnapshotJson() const;

  /// Only the events attributed to trace (hi, lo), as a single-line
  /// Chrome trace JSON document with timestamps shifted onto the
  /// wall-clock base (see WallEpochUs()) so per-job traces from client
  /// and server line up. Empty traceEvents when nothing matches.
  std::string TraceJson(uint64_t trace_hi, uint64_t trace_lo) const;

  /// Writes SnapshotJson() to `path`; returns false on IO failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  void AppendEventJson(const TraceEvent& e, int64_t ts_shift_us,
                       std::string* out) const;
  /// Events in chronological order; caller holds mutex_.
  void LinearizedLocked(std::vector<TraceEvent>* out) const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // ring storage; oldest at start_
  size_t start_ = 0;
  size_t capacity_ = kDefaultCapacity;
  uint64_t dropped_ = 0;
  Counter* dropped_counter_ = nullptr;
  int64_t epoch_ns_ = 0;
  int64_t wall_epoch_us_ = 0;
};

/// RAII span against the global tracer: records a complete event covering
/// its own lifetime. When the tracer is disabled the constructor is a
/// single atomic load and the destructor a branch.
///
/// When the calling thread carries an active TraceContext (or the tracer
/// is enabled), the span allocates its own span id, records the context's
/// open span as its parent, and installs itself as the thread's current
/// span for its lifetime — so spans nested under it (including on pool
/// workers the context propagates to) parent correctly.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  bool armed() const { return armed_; }

  /// Attaches an argument rendered into the event's "args" object.
  TraceSpan& Arg(std::string key, std::string value);
  TraceSpan& Arg(std::string key, int64_t value);
  TraceSpan& Arg(std::string key, uint64_t value);
  TraceSpan& Arg(std::string key, double value);
  TraceSpan& Arg(std::string key, int value) {
    return Arg(std::move(key), static_cast<int64_t>(value));
  }

 private:
  bool armed_ = false;
  bool pushed_context_ = false;
  /// Non-null when the flight recorder logged our enter event and expects
  /// the matching exit (independent of the tracer being enabled).
  const char* fr_name_ = nullptr;
  TraceContext saved_context_;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_TRACE_H_
