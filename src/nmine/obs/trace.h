#ifndef NMINE_OBS_TRACE_H_
#define NMINE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nmine {
namespace obs {

/// One Chrome trace_event "complete" event (ph = "X"): a named span with
/// a start timestamp and duration in microseconds, plus string args.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide span collector. Disabled (and free apart from one atomic
/// load per span) until Start() is called; spans recorded while enabled
/// are buffered in memory and serialized by SnapshotJson() in Chrome
/// trace_event "JSON object format":
///
///   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
///                     "dur": ..., "pid": 1, "tid": 1, "args": {...}}, ...],
///    "displayTimeUnit": "ms"}
///
/// The output loads directly in chrome://tracing and Perfetto.
class Tracer {
 public:
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Clears any buffered events and starts capturing.
  void Start();
  /// Stops capturing (buffered events are kept for snapshotting).
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since Start() (0 when never started).
  int64_t NowUs() const;

  /// Appends one complete event (no-op when disabled).
  void AddComplete(TraceEvent event);

  size_t NumEvents() const;
  std::vector<TraceEvent> Events() const;

  /// All buffered events in trace_event JSON object format.
  std::string SnapshotJson() const;

  /// Writes SnapshotJson() to `path`; returns false on IO failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  int64_t epoch_ns_ = 0;
};

/// RAII span against the global tracer: records a complete event covering
/// its own lifetime. When the tracer is disabled the constructor is a
/// single atomic load and the destructor a branch.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  bool armed() const { return armed_; }

  /// Attaches an argument rendered into the event's "args" object.
  TraceSpan& Arg(std::string key, std::string value);
  TraceSpan& Arg(std::string key, int64_t value);
  TraceSpan& Arg(std::string key, uint64_t value);
  TraceSpan& Arg(std::string key, double value);
  TraceSpan& Arg(std::string key, int value) {
    return Arg(std::move(key), static_cast<int64_t>(value));
  }

 private:
  bool armed_ = false;
  /// Non-null when the flight recorder logged our enter event and expects
  /// the matching exit (independent of the tracer being enabled).
  const char* fr_name_ = nullptr;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_TRACE_H_
