#ifndef NMINE_OBS_JSON_PARSE_H_
#define NMINE_OBS_JSON_PARSE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nmine {
namespace obs {

/// Minimal JSON value for reading back the JSON this system itself emits
/// (metrics snapshots, trace_event files, BENCH_*.json documents). A
/// strict RFC 8259 subset: no \uXXXX decoding beyond Latin-1, numbers as
/// double. Not a general-purpose parser.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member access; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Member's number value, or `dflt` when absent / not a number.
  double GetNumber(const std::string& key, double dflt) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->is_number() ? v->number_value : dflt;
  }
};

/// Parses `text` as one JSON document (surrounding whitespace allowed).
/// Returns nullopt on any syntax error.
std::optional<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a whole file; nullopt on IO or syntax error.
std::optional<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_JSON_PARSE_H_
