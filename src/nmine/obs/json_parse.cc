#include "nmine/obs/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nmine {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipSpace();
    std::optional<JsonValue> value = ParseValue();
    if (!value.has_value()) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return std::nullopt;
      return JsonValue{};
    }
    return ParseNumber();
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue out;
    out.type = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      SkipSpace();
      if (!Consume(':')) return std::nullopt;
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      out.object[key->string_value] = std::move(*value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue out;
    out.type = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      out.array.push_back(std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    if (!Consume('"')) return std::nullopt;
    JsonValue out;
    out.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.string_value.push_back('"');
            break;
          case '\\':
            out.string_value.push_back('\\');
            break;
          case '/':
            out.string_value.push_back('/');
            break;
          case 'b':
            out.string_value.push_back('\b');
            break;
          case 'f':
            out.string_value.push_back('\f');
            break;
          case 'n':
            out.string_value.push_back('\n');
            break;
          case 'r':
            out.string_value.push_back('\r');
            break;
          case 't':
            out.string_value.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            char* end = nullptr;
            std::string hex = text_.substr(pos_, 4);
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return std::nullopt;
            pos_ += 4;
            // Latin-1 subset is enough for our own escaper's output.
            out.string_value.push_back(static_cast<char>(code & 0xff));
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.string_value.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseBool() {
    JsonValue out;
    out.type = JsonValue::Type::kBool;
    if (ConsumeLiteral("true")) {
      out.bool_value = true;
      return out;
    }
    if (ConsumeLiteral("false")) {
      out.bool_value = false;
      return out;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (any && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!any) return std::nullopt;
    JsonValue out;
    out.type = JsonValue::Type::kNumber;
    out.number_value = std::atof(text_.substr(start, pos_ - start).c_str());
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::optional<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return ParseJson(buf.str());
}

}  // namespace obs
}  // namespace nmine
