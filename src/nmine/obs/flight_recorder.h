#ifndef NMINE_OBS_FLIGHT_RECORDER_H_
#define NMINE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nmine {
namespace obs {

/// What kind of moment a flight-recorder event marks.
enum class FlightEventType : uint8_t {
  kSpanEnter = 0,   // a traced span opened (name = span name)
  kSpanExit = 1,    // a traced span closed (a = duration us)
  kPhase = 2,       // a miner entered a pipeline phase
  kProgress = 3,    // periodic progress (a/b = event-specific quantities)
  kScanRetry = 4,   // a failed scan is being retried (a = attempt)
  kGovernorStep = 5,  // resource-governor degradation ladder step
  kCheckpoint = 6,  // a run checkpoint was flushed (a = stage)
  kCancel = 7,      // cooperative cancellation was requested
  kCustom = 8,
};

const char* ToString(FlightEventType type);

/// One recorded event. `name` is a truncated copy of the call site's tag;
/// `a` and `b` carry two event-specific integers (documented per type).
/// The trace triple is stamped from the recording thread's TraceContext
/// (obs/trace_context.h) so a crash dump attributes its breadcrumbs to
/// the request that produced them; all-zero means process-level work.
struct FlightEvent {
  int64_t t_us = 0;  // microseconds since the shared process clock epoch
  uint64_t seq = 0;  // global record sequence number (1-based)
  FlightEventType type = FlightEventType::kCustom;
  char name[39] = {0};
  int64_t a = 0;
  int64_t b = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
};

/// Lock-free ring buffer holding the last N structured events — the
/// crash-forensics counterpart of the metrics registry. Writers pay one
/// fetch_add plus a bounded copy (no locks, no allocation), so Record()
/// is safe from any thread AND from POSIX signal handlers; this is what
/// lets a SIGSEGV handler dump the recent event history.
///
/// Torn reads are handled seqlock-style: each slot carries the sequence
/// number of the record it holds, cleared while the slot is being
/// written; readers skip slots whose sequence changed under them. Under
/// wrap contention an event may be lost to a newer one — acceptable for a
/// forensic tail.
class FlightRecorder {
 public:
  /// The process-wide recorder the instrumentation records into.
  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Allocates the ring (capacity rounded up to a power of two, >= 64)
  /// and starts recording. Idempotent; NOT async-signal-safe (allocates).
  void Enable(size_t capacity = 1024);

  /// Stops recording (events are kept for dumping).
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

  /// Records one event. While disabled this is a single relaxed load.
  /// Lock-free, allocation-free, async-signal-safe once enabled.
  void Record(FlightEventType type, const char* name, int64_t a = 0,
              int64_t b = 0);

  /// Total events recorded (including ones already overwritten).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// The surviving events, oldest first. Torn slots are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// {"schema": "nmine.flight.v1", "total_recorded": N, "events": [...]}.
  std::string SnapshotJson() const;

  /// Writes SnapshotJson() to `path`; false on IO failure. NOT
  /// async-signal-safe — for cooperative exits and /flightz.
  bool DumpJsonFile(const std::string& path) const;

  /// Async-signal-safe dump: JSON-lines, one event per line, written to
  /// `fd` with write(2) and stack-local integer formatting only. For the
  /// SIGSEGV/SIGABRT handlers.
  void DumpToFd(int fd) const;

  /// Drops all recorded events (tests). Not signal-safe.
  void Reset();

 private:
  struct Slot {
    /// 0 = empty; kWriting = mid-update; else event.seq of the contents.
    std::atomic<uint64_t> marker{0};
    FlightEvent event;
  };
  static constexpr uint64_t kWriting = ~uint64_t{0};

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};
  size_t capacity_ = 0;  // power of two
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_FLIGHT_RECORDER_H_
