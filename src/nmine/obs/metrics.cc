#include "nmine/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "nmine/obs/json_util.h"

namespace nmine {
namespace obs {

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::atomic<int64_t>& b : buckets_) b.store(0);
}

void HistogramMetric::Observe(double value) {
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  sum_ += value;
  if (n == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

std::vector<int64_t> HistogramMetric::counts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double HistogramMetric::sum() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return sum_;
}

double HistogramMetric::min() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return min_;
}

double HistogramMetric::max() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return max_;
}

double HistogramMetric::mean() const {
  int64_t n = count();
  if (n == 0) return 0.0;
  return sum() / static_cast<double>(n);
}

double HistogramMetric::Quantile(double q) const {
  const std::vector<int64_t> bucket_counts = counts();
  int64_t total = 0;
  for (int64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  const double lo_clamp = min();
  const double hi_clamp = max();
  if (q <= 0.0) return lo_clamp;
  if (q >= 1.0) return hi_clamp;
  // Rank of the target observation in cumulative order (1-based).
  const double target = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    int64_t c = bucket_counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cumulative + c) < target) {
      cumulative += c;
      continue;
    }
    // The target rank falls in bucket i. Interpolate linearly between the
    // bucket's edges; the first bucket starts at the observed min and the
    // overflow bucket ends at the observed max.
    double lower = i == 0 ? lo_clamp : bounds_[i - 1];
    double upper = i < bounds_.size() ? bounds_[i] : hi_clamp;
    lower = std::max(lower, lo_clamp);
    upper = std::min(std::max(upper, lower), hi_clamp);
    double within = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(c);
    return lower + (upper - lower) * within;
  }
  return hi_clamp;
}

void HistogramMetric::Reset() {
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  sum_ = min_ = max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<HistogramMetric>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(std::move(bounds));
  }
  return *slot;
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

bool MetricsRegistry::HasCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(name) > 0;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds();
    h.counts = hist->counts();
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.p50 = hist->Quantile(0.50);
    h.p95 = hist->Quantile(0.95);
    h.p99 = hist->Quantile(0.99);
    snap.histograms.emplace_back(name, std::move(h));
  }
  return snap;
}

std::string MetricsRegistry::SnapshotJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": ");
    AppendJsonNumber(static_cast<double>(value), &out);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": ");
    AppendJsonNumber(value, &out);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": {\"bounds\": [");
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out.append(", ");
      AppendJsonNumber(h.bounds[i], &out);
    }
    out.append("], \"counts\": [");
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out.append(", ");
      AppendJsonNumber(static_cast<double>(h.counts[i]), &out);
    }
    out.append("], \"count\": ");
    AppendJsonNumber(static_cast<double>(h.count), &out);
    out.append(", \"sum\": ");
    AppendJsonNumber(h.sum, &out);
    out.append(", \"min\": ");
    AppendJsonNumber(h.min, &out);
    out.append(", \"max\": ");
    AppendJsonNumber(h.max, &out);
    out.append(", \"p50\": ");
    AppendJsonNumber(h.p50, &out);
    out.append(", \"p95\": ");
    AppendJsonNumber(h.p95, &out);
    out.append(", \"p99\": ");
    AppendJsonNumber(h.p99, &out);
    out.append("}");
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << SnapshotJson();
  return out.good();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string LevelMetricName(const char* prefix, size_t level,
                            const char* suffix) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s.level.%02zu.%s", prefix, level,
                suffix);
  return buf;
}

}  // namespace obs
}  // namespace nmine
