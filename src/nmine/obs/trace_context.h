#ifndef NMINE_OBS_TRACE_CONTEXT_H_
#define NMINE_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace nmine {
namespace obs {

/// Per-request trace identity carried in thread-local storage while work
/// attributed to one request (one server job) runs. A context is a 128-bit
/// trace id (split into two 64-bit halves; the all-zero id means "no
/// context") plus the 64-bit id of the span currently open on this thread,
/// which becomes the parent of any span opened next.
///
/// The context rides across thread boundaries by value: exec::ThreadPool
/// captures the submitting thread's context with each task and installs it
/// on the worker for the task's duration, so ParallelFor bodies, miner
/// spans, log lines, and flight-recorder events produced on behalf of a
/// job all carry that job's trace id no matter which pooled thread ran
/// them.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;

  bool active() const { return (trace_hi | trace_lo) != 0; }
};

/// The calling thread's current context (inactive when none installed).
const TraceContext& CurrentTraceContext();

/// Allocates a process-unique nonzero span id.
uint64_t NextSpanId();

/// Mints a fresh context: random-ish 128-bit trace id (never zero) with no
/// open span. Uniqueness, not unpredictability, is the goal.
TraceContext MintTraceContext();

/// Renders a 128-bit trace id as 32 lowercase hex digits (W3C
/// traceparent's trace-id field format).
std::string FormatTraceId(uint64_t hi, uint64_t lo);

/// Parses a 32-lowercase-or-uppercase-hex-digit trace id. Returns false
/// (leaving outputs untouched) on wrong length, non-hex characters, or the
/// all-zero id.
bool ParseTraceId(const std::string& text, uint64_t* hi, uint64_t* lo);

namespace internal {
/// Low-level setter used by ScopedTraceContext and TraceSpan; prefer the
/// RAII wrappers, which guarantee the previous context is restored.
void SetCurrentTraceContext(const TraceContext& ctx);
}  // namespace internal

/// RAII installer: saves the thread's current context, installs `ctx`, and
/// restores the saved one on destruction. Used at task-dispatch and
/// span-open boundaries.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  TraceContext saved_;
};

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_TRACE_CONTEXT_H_
