#include "nmine/obs/profiler.h"

#include "nmine/obs/json_util.h"

namespace nmine {
namespace obs {
namespace {

/// Slash-separated path of the scopes currently open on this thread.
thread_local std::string tls_path;

/// Cache of StateForThisThread(), keyed by owner so distinct Profiler
/// instances (tests) never share a slot.
thread_local Profiler* tls_state_owner = nullptr;
thread_local void* tls_state = nullptr;

}  // namespace

ProfileStats Profiler::Section::stats() const {
  ProfileStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_.load(std::memory_order_relaxed);
  int64_t min_seen = min_ns_.load(std::memory_order_relaxed);
  s.min_ns = s.count > 0 ? min_seen : 0;
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  return s;
}

void Profiler::Section::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(INT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Profiler::ThreadState* Profiler::StateForThisThread() {
  if (tls_state_owner == this) {
    return static_cast<ThreadState*>(tls_state);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  thread_states_.push_back(std::make_unique<ThreadState>());
  ThreadState* state = thread_states_.back().get();
  tls_state_owner = this;
  tls_state = state;
  return state;
}

void Profiler::Enable() {
  // Whoever enables profiling is the main thread: --progress reports its
  // section, not whatever scan worker last opened a scope.
  main_state_.store(StateForThisThread(), std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

Profiler::Section& Profiler::GetSection(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    it = sections_.emplace(name, nullptr).first;
    it->second.reset(new Section(&it->first));
  }
  return *it->second;
}

std::vector<std::pair<std::string, ProfileStats>> Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, ProfileStats>> out;
  out.reserve(sections_.size());
  for (const auto& [name, section] : sections_) {
    ProfileStats s = section->stats();
    if (s.count == 0) continue;
    out.emplace_back(name, s);
  }
  return out;
}

std::string Profiler::SnapshotJson() const {
  std::vector<std::pair<std::string, ProfileStats>> snapshot = Snapshot();
  std::string out = "{\"sections\": {";
  bool first = true;
  for (const auto& [name, s] : snapshot) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": {\"count\": ");
    AppendJsonNumber(static_cast<double>(s.count), &out);
    out.append(", \"total_ns\": ");
    AppendJsonNumber(static_cast<double>(s.total_ns), &out);
    out.append(", \"min_ns\": ");
    AppendJsonNumber(static_cast<double>(s.min_ns), &out);
    out.append(", \"max_ns\": ");
    AppendJsonNumber(static_cast<double>(s.max_ns), &out);
    out.append(", \"mean_ns\": ");
    AppendJsonNumber(s.count > 0 ? static_cast<double>(s.total_ns) /
                                       static_cast<double>(s.count)
                                 : 0.0,
                     &out);
    out.append("}");
  }
  out.append(first ? "}}" : "\n  }}");
  return out;
}

std::string Profiler::CurrentSection() const {
  ThreadState* main = main_state_.load(std::memory_order_acquire);
  if (main == nullptr) return std::string();
  const std::string* current = main->current.load(std::memory_order_acquire);
  // The pointee is a map key that is never erased, so the dereference is
  // safe even though the main thread may move `current` on concurrently.
  return current == nullptr ? std::string() : *current;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, section] : sections_) section->Reset();
}

ProfileScope::ProfileScope(const char* name) {
  Profiler& profiler = Profiler::Global();
  if (!profiler.enabled()) return;
  prev_path_size_ = tls_path.size();
  if (!tls_path.empty()) tls_path.push_back('/');
  tls_path.append(name);
  section_ = &profiler.GetSection(tls_path);
  state_ = profiler.StateForThisThread();
  prev_current_ = state_->current.exchange(&section_->name(),
                                           std::memory_order_acq_rel);
  start_ns_ = MonotonicNowNs();
}

ProfileScope::~ProfileScope() {
  if (section_ == nullptr) return;
  section_->Record(MonotonicNowNs() - start_ns_);
  tls_path.resize(prev_path_size_);
  state_->current.store(prev_current_, std::memory_order_release);
}

}  // namespace obs
}  // namespace nmine
