#include "nmine/obs/clock.h"

#include <chrono>

namespace nmine {
namespace obs {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ProcessEpochNs() {
  // First caller fixes the epoch; the static initialization is
  // thread-safe and every later reader sees the same value.
  static const int64_t epoch = MonotonicNowNs();
  return epoch;
}

}  // namespace obs
}  // namespace nmine
