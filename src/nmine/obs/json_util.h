#ifndef NMINE_OBS_JSON_UTIL_H_
#define NMINE_OBS_JSON_UTIL_H_

#include <string>

namespace nmine {
namespace obs {

/// Appends `text` to `out` as a JSON string literal (quotes included),
/// escaping the characters RFC 8259 requires.
void AppendJsonString(const std::string& text, std::string* out);

/// Renders a double as a JSON number: integral values without a fraction,
/// others with enough digits to round-trip; NaN/inf (not representable in
/// JSON) are emitted as null.
void AppendJsonNumber(double value, std::string* out);

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_JSON_UTIL_H_
