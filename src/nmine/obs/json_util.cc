#include "nmine/obs/json_util.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace nmine {
namespace obs {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (unsigned char ch : text) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(ch));
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double value, std::string* out) {
  if (std::isnan(value) || std::isinf(value)) {
    out->append("null");
    return;
  }
  char buf[32];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

}  // namespace obs
}  // namespace nmine
