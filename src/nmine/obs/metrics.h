#ifndef NMINE_OBS_METRICS_H_
#define NMINE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nmine {
namespace obs {

/// Monotonically increasing integer metric. Lock-free; safe to increment
/// from any thread once obtained from the registry.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets, plus an implicit overflow bucket (so counts() has
/// bounds.size() + 1 entries). Tracks count/sum/min/max alongside.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> counts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket containing the target rank; the open-ended first and overflow
  /// buckets are clamped to the observed min/max. 0.0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  mutable std::mutex stats_mutex_;  // guards sum_/min_/max_ (doubles)
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time copy of one histogram's state (see MetricsSnapshot).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 entries (overflow last)
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Structured point-in-time copy of every metric in a registry, sorted by
/// name within each section. This is what the JSON snapshot, the
/// OpenMetrics renderer, and the telemetry sampler all consume — one
/// locked walk of the registry, many renderings.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named registry of counters, gauges, and histograms. Get* registers on
/// first use and returns a stable reference (metrics are never removed, so
/// references stay valid for the registry's lifetime). Snapshot* renders
/// every metric as JSON:
///
///   {
///     "counters":   {"mining.scans": 3, ...},
///     "gauges":     {"phase1.sample_size": 400, ...},
///     "histograms": {"phase2.band_width":
///        {"bounds": [...], "counts": [...], "count": N,
///         "sum": S, "min": m, "max": M,
///         "p50": .., "p95": .., "p99": ..}, ...}
///   }
class MetricsRegistry {
 public:
  /// The process-wide registry the miners record into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// On first use registers the histogram with `bounds`; later calls
  /// return the existing histogram regardless of the bounds passed.
  HistogramMetric& GetHistogram(const std::string& name,
                                std::vector<double> bounds);

  /// Current counter value, or 0 if never registered.
  int64_t CounterValue(const std::string& name) const;
  /// Current gauge value, or 0.0 if never registered.
  double GaugeValue(const std::string& name) const;
  /// True if a counter with this exact name exists.
  bool HasCounter(const std::string& name) const;

  /// Structured copy of every metric. Values are read with relaxed loads
  /// while other threads may be incrementing, so a snapshot is a
  /// consistent-enough point-in-time view: every counter is some value it
  /// actually held, and counters never appear to run backwards across
  /// successive snapshots.
  MetricsSnapshot Snapshot() const;

  /// All metrics as a JSON object (sorted by name within each section).
  std::string SnapshotJson() const;

  /// Writes SnapshotJson() to `path`; returns false on IO failure.
  bool WriteJsonFile(const std::string& path) const;

  /// Zeroes every value but keeps registrations (references stay valid).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Formats "prefix.level.K.suffix"-style metric names without allocating
/// intermediates by hand at every call site.
std::string LevelMetricName(const char* prefix, size_t level,
                            const char* suffix);

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_METRICS_H_
