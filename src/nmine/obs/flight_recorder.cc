#include "nmine/obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "nmine/obs/clock.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/trace_context.h"

namespace nmine {
namespace obs {
namespace {

/// Signal-safe decimal rendering of a signed 64-bit value into `buf`.
/// Returns the number of characters written (no terminator).
size_t FormatInt(int64_t value, char* buf) {
  char tmp[24];
  size_t n = 0;
  uint64_t v;
  bool negative = value < 0;
  // Negate via unsigned arithmetic so INT64_MIN is handled.
  v = negative ? ~static_cast<uint64_t>(value) + 1
               : static_cast<uint64_t>(value);
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  size_t out = 0;
  if (negative) buf[out++] = '-';
  while (n > 0) buf[out++] = tmp[--n];
  return out;
}

/// Signal-safe append helpers for DumpToFd's line buffer.
void AppendRaw(const char* text, char* buf, size_t cap, size_t* len) {
  while (*text != '\0' && *len < cap) buf[(*len)++] = *text++;
}

void AppendInt(int64_t value, char* buf, size_t cap, size_t* len) {
  char tmp[24];
  size_t n = FormatInt(value, tmp);
  for (size_t i = 0; i < n && *len < cap; ++i) buf[(*len)++] = tmp[i];
}

/// Signal-safe 16-lowercase-hex-digit rendering (zero padded).
void AppendHex16(uint64_t value, char* buf, size_t cap, size_t* len) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0 && *len < cap; shift -= 4) {
    buf[(*len)++] = kHex[(value >> shift) & 0xf];
  }
}

void WriteAll(int fd, const char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t w = ::write(fd, buf + done, len - done);
    if (w <= 0) return;  // nothing a signal handler can do about it
    done += static_cast<size_t>(w);
  }
}

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ToString(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSpanEnter:
      return "span_enter";
    case FlightEventType::kSpanExit:
      return "span_exit";
    case FlightEventType::kPhase:
      return "phase";
    case FlightEventType::kProgress:
      return "progress";
    case FlightEventType::kScanRetry:
      return "scan_retry";
    case FlightEventType::kGovernorStep:
      return "governor_step";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kCancel:
      return "cancel";
    case FlightEventType::kCustom:
      return "custom";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Enable(size_t capacity) {
  if (slots_ == nullptr) {
    capacity_ = RoundUpPow2(capacity);
    slots_ = std::make_unique<Slot[]>(capacity_);
  }
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::Record(FlightEventType type, const char* name,
                            int64_t a, int64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & (capacity_ - 1)];
  slot.marker.store(kWriting, std::memory_order_release);
  FlightEvent& e = slot.event;
  e.t_us = SinceEpochUs();
  e.seq = seq;
  e.type = type;
  size_t i = 0;
  if (name != nullptr) {
    for (; i < sizeof(e.name) - 1 && name[i] != '\0'; ++i) e.name[i] = name[i];
  }
  e.name[i] = '\0';
  e.a = a;
  e.b = b;
  // Attribute the event to the recording thread's active request, if any.
  // The thread-local is plain zero-initialized data, so this read stays
  // allocation-free (and safe from the cooperative signal paths that
  // record cancel events).
  const TraceContext& ctx = CurrentTraceContext();
  e.trace_hi = ctx.trace_hi;
  e.trace_lo = ctx.trace_lo;
  e.span_id = ctx.span_id;
  slot.marker.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  if (slots_ == nullptr) return out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || before == kWriting) continue;
    FlightEvent copy = slot.event;
    uint64_t after = slot.marker.load(std::memory_order_acquire);
    if (after != before) continue;  // torn by a concurrent writer
    copy.seq = before;
    out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::string FlightRecorder::SnapshotJson() const {
  std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"schema\": \"nmine.flight.v1\", \"total_recorded\": ";
  AppendJsonNumber(static_cast<double>(total_recorded()), &out);
  out.append(", \"events\": [");
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("  {\"seq\": ");
    AppendJsonNumber(static_cast<double>(e.seq), &out);
    out.append(", \"t_us\": ");
    AppendJsonNumber(static_cast<double>(e.t_us), &out);
    out.append(", \"type\": ");
    AppendJsonString(ToString(e.type), &out);
    out.append(", \"name\": ");
    AppendJsonString(e.name, &out);
    out.append(", \"a\": ");
    AppendJsonNumber(static_cast<double>(e.a), &out);
    out.append(", \"b\": ");
    AppendJsonNumber(static_cast<double>(e.b), &out);
    if ((e.trace_hi | e.trace_lo) != 0) {
      out.append(", \"trace_id\": \"");
      out.append(FormatTraceId(e.trace_hi, e.trace_lo));
      out.push_back('"');
      if (e.span_id != 0) {
        char hex[32];
        std::snprintf(hex, sizeof(hex), ", \"span_id\": \"%llx\"",
                      static_cast<unsigned long long>(e.span_id));
        out.append(hex);
      }
    }
    out.append("}");
  }
  out.append(events.empty() ? "]}\n" : "\n]}\n");
  return out;
}

bool FlightRecorder::DumpJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << SnapshotJson();
  return out.good();
}

void FlightRecorder::DumpToFd(int fd) const {
  if (slots_ == nullptr) return;
  char line[256];
  size_t len = 0;
  AppendRaw("{\"schema\":\"nmine.flight.v1\",\"crash_dump\":true,"
            "\"total_recorded\":",
            line, sizeof(line), &len);
  AppendInt(static_cast<int64_t>(total_recorded()), line, sizeof(line), &len);
  AppendRaw("}\n", line, sizeof(line), &len);
  WriteAll(fd, line, len);

  // Walk slots in ring order starting at the oldest. Events may be mildly
  // out of order around a concurrent writer; the seq field disambiguates.
  const uint64_t total = next_.load(std::memory_order_relaxed);
  const size_t start = static_cast<size_t>(total & (capacity_ - 1));
  for (size_t k = 0; k < capacity_; ++k) {
    const Slot& slot = slots_[(start + k) & (capacity_ - 1)];
    const uint64_t marker = slot.marker.load(std::memory_order_acquire);
    if (marker == 0 || marker == kWriting) continue;
    const FlightEvent& e = slot.event;
    len = 0;
    AppendRaw("{\"seq\":", line, sizeof(line), &len);
    AppendInt(static_cast<int64_t>(marker), line, sizeof(line), &len);
    AppendRaw(",\"t_us\":", line, sizeof(line), &len);
    AppendInt(e.t_us, line, sizeof(line), &len);
    AppendRaw(",\"type\":\"", line, sizeof(line), &len);
    AppendRaw(ToString(e.type), line, sizeof(line), &len);
    AppendRaw("\",\"name\":\"", line, sizeof(line), &len);
    // Names are code-controlled tags; drop anything that would need JSON
    // escaping rather than escape it in a signal handler.
    for (size_t i = 0; i < sizeof(e.name) && e.name[i] != '\0'; ++i) {
      char c = e.name[i];
      if (c >= 0x20 && c != '"' && c != '\\' && len < sizeof(line)) {
        line[len++] = c;
      }
    }
    AppendRaw("\",\"a\":", line, sizeof(line), &len);
    AppendInt(e.a, line, sizeof(line), &len);
    AppendRaw(",\"b\":", line, sizeof(line), &len);
    AppendInt(e.b, line, sizeof(line), &len);
    if ((e.trace_hi | e.trace_lo) != 0) {
      AppendRaw(",\"trace_id\":\"", line, sizeof(line), &len);
      AppendHex16(e.trace_hi, line, sizeof(line), &len);
      AppendHex16(e.trace_lo, line, sizeof(line), &len);
      AppendRaw("\",\"span_id\":\"", line, sizeof(line), &len);
      AppendHex16(e.span_id, line, sizeof(line), &len);
      AppendRaw("\"", line, sizeof(line), &len);
    }
    AppendRaw("}\n", line, sizeof(line), &len);
    WriteAll(fd, line, len);
  }
}

void FlightRecorder::Reset() {
  if (slots_ == nullptr) return;
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].marker.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace nmine
