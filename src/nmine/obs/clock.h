#ifndef NMINE_OBS_CLOCK_H_
#define NMINE_OBS_CLOCK_H_

#include <cstdint>

namespace nmine {
namespace obs {

/// The single monotonic clock base shared by every timestamped
/// observability surface: Chrome-trace spans, profiler scope timings, the
/// telemetry sampler's time-series rows, and flight-recorder events all
/// read this clock, so their timestamps can be correlated directly and a
/// wall-clock (NTP) step can never produce a negative duration anywhere.

/// Monotonic nanoseconds since an arbitrary but fixed origin
/// (std::chrono::steady_clock).
int64_t MonotonicNowNs();

/// The process-wide epoch: the value of MonotonicNowNs() the first time
/// any caller asked for it. Stable for the life of the process.
int64_t ProcessEpochNs();

/// Monotonic nanoseconds elapsed since the process epoch (>= 0).
inline int64_t SinceEpochNs() { return MonotonicNowNs() - ProcessEpochNs(); }

/// Microsecond rendering of SinceEpochNs() — the unit trace events and
/// telemetry rows carry.
inline int64_t SinceEpochUs() { return SinceEpochNs() / 1000; }

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_CLOCK_H_
