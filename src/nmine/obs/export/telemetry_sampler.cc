#include "nmine/obs/export/telemetry_sampler.h"

#include <algorithm>
#include <chrono>

#include "nmine/obs/clock.h"
#include "nmine/obs/export/openmetrics.h"
#include "nmine/obs/json_util.h"

namespace nmine {
namespace obs {
namespace {

void AppendCounterMap(
    const std::vector<std::pair<std::string, int64_t>>& entries,
    std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out->append(", ");
    first = false;
    AppendJsonString(name, out);
    out->append(": ");
    AppendJsonNumber(static_cast<double>(value), out);
  }
  out->push_back('}');
}

}  // namespace

TelemetrySampler::~TelemetrySampler() { Stop(); }

bool TelemetrySampler::Start(const Options& options) {
  if (thread_.joinable() || options.jsonl_path.empty() ||
      options.interval_s <= 0.0) {
    return false;
  }
  options_ = options;
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
  if (options_.profiler == nullptr) options_.profiler = &Profiler::Global();
  out_.open(options_.jsonl_path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) return false;
  stop_ = false;
  thread_ = std::thread([this] { SamplerLoop(); });
  return true;
}

void TelemetrySampler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

bool TelemetrySampler::FlushFinal(const char* reason) {
  if (!out_.is_open()) return false;
  WriteRow(reason);
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
  return out_.good();
}

uint64_t TelemetrySampler::rows_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void TelemetrySampler::SamplerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock,
                       std::chrono::duration<double>(options_.interval_s),
                       [this] { return stop_; })) {
    lock.unlock();
    WriteRow("tick");
    lock.lock();
  }
}

void TelemetrySampler::WriteRow(const char* reason) {
  // Snapshot outside the sampler lock: the registry has its own.
  const MetricsSnapshot snap = options_.registry->Snapshot();
  const int64_t t_us = SinceEpochUs();

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  ++seq_;
  std::string row = "{\"schema\": \"nmine.telemetry.v1\", \"seq\": ";
  AppendJsonNumber(static_cast<double>(seq_), &row);
  row.append(", \"t_us\": ");
  AppendJsonNumber(static_cast<double>(t_us), &row);
  row.append(", \"interval_s\": ");
  AppendJsonNumber(options_.interval_s, &row);
  row.append(", \"reason\": ");
  AppendJsonString(reason, &row);

  row.append(", \"counters\": ");
  AppendCounterMap(snap.counters, &row);

  // Deltas and rates against the previous row. Both snapshots are sorted
  // by name, so a single merge walk pairs them; a counter absent from the
  // previous row (registered since) deltas from zero.
  const double dt_s =
      prev_t_us_ > 0 ? static_cast<double>(t_us - prev_t_us_) / 1e6 : 0.0;
  row.append(", \"deltas\": {");
  std::string rates = "{";
  bool first = true;
  size_t j = 0;
  for (const auto& [name, value] : snap.counters) {
    while (j < prev_counters_.size() && prev_counters_[j].first < name) ++j;
    const int64_t prev =
        (j < prev_counters_.size() && prev_counters_[j].first == name)
            ? prev_counters_[j].second
            : 0;
    const int64_t delta = value - prev;
    if (!first) {
      row.append(", ");
      rates.append(", ");
    }
    first = false;
    AppendJsonString(name, &row);
    row.append(": ");
    AppendJsonNumber(static_cast<double>(delta), &row);
    AppendJsonString(name, &rates);
    rates.append(": ");
    AppendJsonNumber(dt_s > 0.0 ? static_cast<double>(delta) / dt_s : 0.0,
                     &rates);
  }
  row.append("}, \"rates\": ");
  rates.push_back('}');
  row.append(rates);

  row.append(", \"gauges\": {");
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) row.append(", ");
    first = false;
    AppendJsonString(name, &row);
    row.append(": ");
    AppendJsonNumber(value, &row);
  }
  row.push_back('}');

  if (options_.include_profile) {
    row.append(", \"profile\": {");
    first = true;
    for (const auto& [name, stats] : options_.profiler->Snapshot()) {
      if (!first) row.append(", ");
      first = false;
      AppendJsonString(name, &row);
      row.append(": {\"count\": ");
      AppendJsonNumber(static_cast<double>(stats.count), &row);
      row.append(", \"total_ns\": ");
      AppendJsonNumber(static_cast<double>(stats.total_ns), &row);
      row.append("}");
    }
    row.push_back('}');
  }
  row.append("}\n");
  out_ << row;

  prev_t_us_ = t_us;
  prev_counters_ = snap.counters;

  if (!options_.openmetrics_path.empty()) {
    std::ofstream om(options_.openmetrics_path,
                     std::ios::binary | std::ios::trunc);
    if (om.is_open()) om << RenderOpenMetrics(snap);
  }
}

}  // namespace obs
}  // namespace nmine
