#ifndef NMINE_OBS_EXPORT_OPENMETRICS_H_
#define NMINE_OBS_EXPORT_OPENMETRICS_H_

#include <string>

#include "nmine/obs/metrics.h"

namespace nmine {
namespace obs {

/// Rewrites a registry metric name as an OpenMetrics metric name: every
/// character outside [a-zA-Z0-9_:] (notably the '.' separators this
/// codebase uses) becomes '_', and a leading digit is prefixed with '_'.
std::string OpenMetricsName(const std::string& name);

/// Escapes a label value per the OpenMetrics exposition format
/// (backslash, double-quote, and newline are backslash-escaped).
std::string EscapeLabelValue(const std::string& value);

/// Renders a metrics snapshot in the OpenMetrics / Prometheus text
/// exposition format, terminated by "# EOF":
///
///   # TYPE nmine_phase3_scans counter
///   nmine_phase3_scans_total 12
///   # TYPE nmine_phase1_sample_size gauge
///   nmine_phase1_sample_size 400
///   # TYPE nmine_phase2_band_width histogram
///   nmine_phase2_band_width_bucket{le="0.001"} 0
///   ...
///   nmine_phase2_band_width_bucket{le="+Inf"} 7
///   nmine_phase2_band_width_sum 0.42
///   nmine_phase2_band_width_count 7
///   # EOF
///
/// Histogram bucket counts are rendered cumulatively, as the format
/// requires (the registry stores per-bucket counts). Every metric name is
/// prefixed "nmine_". Counter values come from one snapshot, so the
/// rendering inherits the registry's monotonicity: a later scrape never
/// shows a smaller counter.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_EXPORT_OPENMETRICS_H_
