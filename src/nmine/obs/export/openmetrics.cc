#include "nmine/obs/export/openmetrics.h"

#include <cstdio>

namespace nmine {
namespace obs {
namespace {

void AppendNumber(double value, std::string* out) {
  char buf[64];
  if (value == static_cast<int64_t>(value) && value > -1e15 && value < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(value)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

void AppendInt(int64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out->append(buf);
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out.append("nmine_");
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = OpenMetricsName(name);
    out.append("# TYPE ").append(om).append(" counter\n");
    out.append(om).append("_total ");
    AppendInt(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = OpenMetricsName(name);
    out.append("# TYPE ").append(om).append(" gauge\n");
    out.append(om).push_back(' ');
    AppendNumber(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string om = OpenMetricsName(name);
    out.append("# TYPE ").append(om).append(" histogram\n");
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out.append(om).append("_bucket{le=\"");
      if (i < h.bounds.size()) {
        std::string bound;
        AppendNumber(h.bounds[i], &bound);
        out.append(EscapeLabelValue(bound));
      } else {
        out.append("+Inf");
      }
      out.append("\"} ");
      AppendInt(cumulative, &out);
      out.push_back('\n');
    }
    out.append(om).append("_sum ");
    AppendNumber(h.sum, &out);
    out.push_back('\n');
    out.append(om).append("_count ");
    AppendInt(h.count, &out);
    out.push_back('\n');
  }
  out.append("# EOF\n");
  return out;
}

}  // namespace obs
}  // namespace nmine
