#ifndef NMINE_OBS_EXPORT_TELEMETRY_SAMPLER_H_
#define NMINE_OBS_EXPORT_TELEMETRY_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"

namespace nmine {
namespace obs {

/// Background thread that periodically snapshots a MetricsRegistry (and
/// the Profiler), computes per-interval counter deltas and rates, and
/// appends one schema-versioned JSON object per sample to a JSON-lines
/// time-series file:
///
///   {"schema": "nmine.telemetry.v1", "seq": 3, "t_us": 3141592,
///    "interval_s": 1.0, "reason": "tick",
///    "counters": {"db.scans.started": 4, ...},
///    "deltas":   {"db.scans.started": 1, ...},     // since previous row
///    "rates":    {"db.scans.started": 1.02, ...},  // per second
///    "gauges":   {"phase1.sample_size": 400, ...},
///    "profile":  {"phase3.scan": {"count": 7, "total_ns": ...}, ...}}
///
/// Timestamps are microseconds on the shared process clock base
/// (obs/clock.h), so rows line up with Chrome-trace spans and
/// flight-recorder events. When `openmetrics_path` is set, each sample
/// additionally rewrites that file with the current OpenMetrics text
/// rendering (a Prometheus textfile-collector style export).
///
/// Cost model: one registry walk per interval. At the default 1 s
/// interval this is far below measurement noise for any multi-second run
/// (see EXPERIMENTS.md "Telemetry overhead").
class TelemetrySampler {
 public:
  struct Options {
    /// JSON-lines output path. Required.
    std::string jsonl_path;
    /// When non-empty, rewritten with the OpenMetrics rendering on every
    /// sample (and on the final flush).
    std::string openmetrics_path;
    /// Seconds between samples.
    double interval_s = 1.0;
    /// Sources; defaulted to the process-wide instances.
    const MetricsRegistry* registry = nullptr;
    const Profiler* profiler = nullptr;
    /// Include the profiler section table in each row.
    bool include_profile = true;
  };

  TelemetrySampler() = default;
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Opens the output and spawns the sampling thread. False (no thread
  /// spawned) when the file cannot be opened or options are invalid.
  bool Start(const Options& options);

  /// Stops and joins the sampling thread; the output stays open so a
  /// final snapshot can still be flushed. Idempotent.
  void Stop();

  /// Appends one last snapshot row tagged with `reason` ("exit",
  /// "cancelled", "deadline", ...) and flushes the file. Works before,
  /// during, or after Stop(); this is what the CLI calls on SIGINT/
  /// SIGTERM/deadline exits so a killed run keeps its diagnostics.
  bool FlushFinal(const char* reason);

  bool running() const { return thread_.joinable(); }
  uint64_t rows_written() const;

 private:
  void SamplerLoop();
  /// Takes one sample and appends a row. Caller holds no locks.
  void WriteRow(const char* reason);

  Options options_;
  std::ofstream out_;
  mutable std::mutex mutex_;  // guards out_, prev_, seq_
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  uint64_t seq_ = 0;
  int64_t prev_t_us_ = 0;
  std::vector<std::pair<std::string, int64_t>> prev_counters_;
};

}  // namespace obs
}  // namespace nmine

#endif  // NMINE_OBS_EXPORT_TELEMETRY_SAMPLER_H_
