#include "nmine/obs/trace_context.h"

#include <atomic>
#include <cstdio>
#include <random>

#include "nmine/obs/clock.h"

namespace nmine {
namespace obs {

namespace {

thread_local TraceContext g_current_context;

uint64_t MixBits(uint64_t x) {
  // splitmix64 finalizer: cheap, well-distributed, and deterministic given
  // its input — good enough for id uniqueness.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t RandomSeed() {
  std::random_device rd;
  uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  return seed ^ static_cast<uint64_t>(MonotonicNowNs());
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const TraceContext& CurrentTraceContext() { return g_current_context; }

namespace internal {
void SetCurrentTraceContext(const TraceContext& ctx) {
  g_current_context = ctx;
}
}  // namespace internal

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext MintTraceContext() {
  static std::atomic<uint64_t> counter{RandomSeed()};
  TraceContext ctx;
  do {
    uint64_t base = counter.fetch_add(1, std::memory_order_relaxed);
    ctx.trace_hi = MixBits(base);
    ctx.trace_lo = MixBits(base ^ 0xa5a5a5a5a5a5a5a5ULL);
  } while (!ctx.active());
  // A freshly minted context is a usable root: spans opened under it
  // parent to this id.
  ctx.span_id = NextSpanId();
  return ctx;
}

std::string FormatTraceId(uint64_t hi, uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool ParseTraceId(const std::string& text, uint64_t* hi, uint64_t* lo) {
  if (text.size() != 32) return false;
  uint64_t parsed_hi = 0;
  uint64_t parsed_lo = 0;
  for (size_t i = 0; i < 32; ++i) {
    int digit = HexDigit(text[i]);
    if (digit < 0) return false;
    uint64_t& half = i < 16 ? parsed_hi : parsed_lo;
    half = (half << 4) | static_cast<uint64_t>(digit);
  }
  if ((parsed_hi | parsed_lo) == 0) return false;
  *hi = parsed_hi;
  *lo = parsed_lo;
  return true;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : saved_(g_current_context) {
  g_current_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current_context = saved_; }

}  // namespace obs
}  // namespace nmine
