#include "nmine/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "nmine/obs/clock.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/metrics.h"

namespace nmine {
namespace obs {

namespace {

int64_t WallNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int32_t ThreadLaneId() {
  static std::atomic<int32_t> next{1};
  thread_local int32_t lane = next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) return;
  events_.clear();
  start_ = 0;
  dropped_ = 0;
  // All trace timestamps sit on the shared process clock base
  // (obs/clock.h), the same one the telemetry sampler and the flight
  // recorder stamp with — so spans, telemetry rows, and flight events
  // correlate directly, whenever tracing was started.
  epoch_ns_ = ProcessEpochNs();
  // Anchor trace timestamp 0 to the wall clock so traces from different
  // processes (client, server) can be laid on one real-time axis.
  wall_epoch_us_ = WallNowUs() - (MonotonicNowNs() - epoch_ns_) / 1000;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowUs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch_ns_ == 0) return 0;
  return (MonotonicNowNs() - epoch_ns_) / 1000;
}

int64_t Tracer::WallEpochUs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_epoch_us_;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity < 1) capacity = 1;
  if (capacity == capacity_) return;
  std::vector<TraceEvent> linear;
  LinearizedLocked(&linear);
  if (linear.size() > capacity) {
    linear.erase(linear.begin(),
                 linear.begin() + (linear.size() - capacity));
  }
  events_ = std::move(linear);
  start_ = 0;
  capacity_ = capacity;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::AddComplete(TraceEvent event) {
  if (!enabled()) return;
  if (event.tid == 0) event.tid = ThreadLaneId();
  if ((event.trace_hi | event.trace_lo) == 0) {
    const TraceContext& ctx = CurrentTraceContext();
    event.trace_hi = ctx.trace_hi;
    event.trace_lo = ctx.trace_lo;
    if (event.span_id == 0) event.span_id = ctx.span_id;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring is full: overwrite the oldest event and account for the drop.
  events_[start_] = std::move(event);
  start_ = (start_ + 1) % capacity_;
  ++dropped_;
  if (dropped_counter_ == nullptr) {
    dropped_counter_ =
        &MetricsRegistry::Global().GetCounter("obs.trace.dropped");
  }
  dropped_counter_->Increment();
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::LinearizedLocked(std::vector<TraceEvent>* out) const {
  out->clear();
  out->reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out->push_back(events_[(start_ + i) % events_.size()]);
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  LinearizedLocked(&out);
  return out;
}

void Tracer::AppendEventJson(const TraceEvent& e, int64_t ts_shift_us,
                             std::string* out) const {
  out->append("{\"name\": ");
  AppendJsonString(e.name, out);
  out->append(", \"cat\": ");
  AppendJsonString(e.category, out);
  out->append(", \"ph\": \"X\", \"ts\": ");
  AppendJsonNumber(static_cast<double>(e.ts_us + ts_shift_us), out);
  out->append(", \"dur\": ");
  AppendJsonNumber(static_cast<double>(e.dur_us), out);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %d, \"args\": {",
                static_cast<int>(e.tid == 0 ? 1 : e.tid));
  out->append(buf);
  bool first = true;
  if ((e.trace_hi | e.trace_lo) != 0) {
    out->append("\"trace_id\": \"");
    out->append(FormatTraceId(e.trace_hi, e.trace_lo));
    out->push_back('"');
    first = false;
  }
  if (e.span_id != 0) {
    std::snprintf(buf, sizeof(buf), "%s\"span_id\": \"%llx\"",
                  first ? "" : ", ",
                  static_cast<unsigned long long>(e.span_id));
    out->append(buf);
    first = false;
  }
  if (e.parent_span_id != 0) {
    std::snprintf(buf, sizeof(buf), "%s\"parent_span_id\": \"%llx\"",
                  first ? "" : ", ",
                  static_cast<unsigned long long>(e.parent_span_id));
    out->append(buf);
    first = false;
  }
  for (size_t a = 0; a < e.args.size(); ++a) {
    if (!first) out->append(", ");
    first = false;
    AppendJsonString(e.args[a].first, out);
    out->append(": ");
    AppendJsonString(e.args[a].second, out);
  }
  out->append("}}");
}

std::string Tracer::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> linear;
  LinearizedLocked(&linear);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < linear.size(); ++i) {
    out.append(i == 0 ? "\n  " : ",\n  ");
    AppendEventJson(linear[i], 0, &out);
  }
  out.append(linear.empty() ? "],\n" : "\n],\n");
  char buf[96];
  std::snprintf(buf, sizeof(buf), " \"wallClockEpochUs\": %lld,\n",
                static_cast<long long>(wall_epoch_us_));
  out.append(buf);
  out.append(" \"displayTimeUnit\": \"ms\"}\n");
  return out;
}

std::string Tracer::TraceJson(uint64_t trace_hi, uint64_t trace_lo) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> linear;
  LinearizedLocked(&linear);
  // Single-line output so the document can travel as one line-JSON
  // protocol string member and one /tracez response body.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : linear) {
    if (e.trace_hi != trace_hi || e.trace_lo != trace_lo) continue;
    if (!first) out.append(", ");
    first = false;
    AppendEventJson(e, wall_epoch_us_, &out);
  }
  out.append("], \"displayTimeUnit\": \"ms\"}");
  return out;
}

bool Tracer::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << SnapshotJson();
  return out.good();
}

TraceSpan::TraceSpan(const char* name, const char* category) {
  Tracer& tracer = Tracer::Global();
  const bool tracer_on = tracer.enabled();
  const TraceContext& ctx = CurrentTraceContext();
  if (tracer_on || ctx.active()) {
    // Allocate our span id and become the thread's current span so nested
    // spans (and pool tasks dispatched from inside us) parent correctly.
    event_.trace_hi = ctx.trace_hi;
    event_.trace_lo = ctx.trace_lo;
    event_.parent_span_id = ctx.span_id;
    event_.span_id = NextSpanId();
    saved_context_ = ctx;
    TraceContext own = ctx;
    own.span_id = event_.span_id;
    internal::SetCurrentTraceContext(own);
    pushed_context_ = true;
  }
  // The flight recorder shadows the coarse span structure even when the
  // tracer is off: span enter/exit events are exactly the breadcrumbs a
  // crash dump needs, and TraceSpans only mark phase/level/scan-grain
  // moments (never per-record loops), so the ring sees a modest rate.
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    recorder.Record(FlightEventType::kSpanEnter, name);
    fr_name_ = name;
  }
  if (!tracer_on) return;
  armed_ = true;
  event_.name = name;
  event_.category = category;
  event_.tid = ThreadLaneId();
  event_.ts_us = tracer.NowUs();
}

TraceSpan::~TraceSpan() {
  if (fr_name_ != nullptr) {
    FlightRecorder::Global().Record(FlightEventType::kSpanExit, fr_name_,
                                    armed_ ? Tracer::Global().NowUs() -
                                                 event_.ts_us
                                           : 0);
  }
  if (pushed_context_) internal::SetCurrentTraceContext(saved_context_);
  if (!armed_) return;
  Tracer& tracer = Tracer::Global();
  event_.dur_us = tracer.NowUs() - event_.ts_us;
  tracer.AddComplete(std::move(event_));
}

TraceSpan& TraceSpan::Arg(std::string key, std::string value) {
  if (armed_) event_.args.emplace_back(std::move(key), std::move(value));
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, int64_t value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, uint64_t value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, double value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

}  // namespace obs
}  // namespace nmine
