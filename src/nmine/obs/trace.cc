#include "nmine/obs/trace.h"

#include <cstdio>
#include <fstream>

#include "nmine/obs/clock.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/json_util.h"

namespace nmine {
namespace obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  // All trace timestamps sit on the shared process clock base
  // (obs/clock.h), the same one the telemetry sampler and the flight
  // recorder stamp with — so spans, telemetry rows, and flight events
  // correlate directly, whenever tracing was started.
  epoch_ns_ = ProcessEpochNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowUs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch_ns_ == 0) return 0;
  return (MonotonicNowNs() - epoch_ns_) / 1000;
}

void Tracer::AddComplete(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("  {\"name\": ");
    AppendJsonString(e.name, &out);
    out.append(", \"cat\": ");
    AppendJsonString(e.category, &out);
    out.append(", \"ph\": \"X\", \"ts\": ");
    AppendJsonNumber(static_cast<double>(e.ts_us), &out);
    out.append(", \"dur\": ");
    AppendJsonNumber(static_cast<double>(e.dur_us), &out);
    out.append(", \"pid\": 1, \"tid\": 1, \"args\": {");
    for (size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out.append(", ");
      AppendJsonString(e.args[a].first, &out);
      out.append(": ");
      AppendJsonString(e.args[a].second, &out);
    }
    out.append("}}");
  }
  out.append(events_.empty() ? "],\n" : "\n],\n");
  out.append(" \"displayTimeUnit\": \"ms\"}\n");
  return out;
}

bool Tracer::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << SnapshotJson();
  return out.good();
}

TraceSpan::TraceSpan(const char* name, const char* category) {
  // The flight recorder shadows the coarse span structure even when the
  // tracer is off: span enter/exit events are exactly the breadcrumbs a
  // crash dump needs, and TraceSpans only mark phase/level/scan-grain
  // moments (never per-record loops), so the ring sees a modest rate.
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    recorder.Record(FlightEventType::kSpanEnter, name);
    fr_name_ = name;
  }
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  armed_ = true;
  event_.name = name;
  event_.category = category;
  event_.ts_us = tracer.NowUs();
}

TraceSpan::~TraceSpan() {
  if (fr_name_ != nullptr) {
    FlightRecorder::Global().Record(FlightEventType::kSpanExit, fr_name_,
                                    armed_ ? Tracer::Global().NowUs() -
                                                 event_.ts_us
                                           : 0);
  }
  if (!armed_) return;
  Tracer& tracer = Tracer::Global();
  event_.dur_us = tracer.NowUs() - event_.ts_us;
  tracer.AddComplete(std::move(event_));
}

TraceSpan& TraceSpan::Arg(std::string key, std::string value) {
  if (armed_) event_.args.emplace_back(std::move(key), std::move(value));
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, int64_t value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, uint64_t value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

TraceSpan& TraceSpan::Arg(std::string key, double value) {
  if (!armed_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  event_.args.emplace_back(std::move(key), buf);
  return *this;
}

}  // namespace obs
}  // namespace nmine
