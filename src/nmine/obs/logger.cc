#include "nmine/obs/logger.h"

#include <cstdio>
#include <fstream>

#include "nmine/obs/clock.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/trace_context.h"

namespace nmine {
namespace obs {
namespace {

const char* UpperName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "UNKNOWN";
}

/// Top-level keys emitted by JsonLinesSink before user fields; a user
/// field with one of these names would otherwise produce a duplicate key.
bool IsReservedJsonKey(const std::string& key) {
  return key == "ts_us" || key == "level" || key == "component" ||
         key == "message";
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

std::optional<LogLevel> ParseLogLevel(const std::string& text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

void TextSink::Write(const LogRecord& record) {
  char head[64];
  std::snprintf(head, sizeof(head), "[%10.6f] %-5s ",
                static_cast<double>(record.ts_us) / 1e6,
                UpperName(record.level));
  std::string line(head);
  line.append(record.component);
  line.append(": ");
  line.append(record.message);
  for (const auto& [key, value] : record.fields) {
    line.append("  ");
    line.append(key);
    line.push_back('=');
    line.append(value);
  }
  line.push_back('\n');
  (*out_) << line << std::flush;
}

void JsonLinesSink::Write(const LogRecord& record) {
  std::string line = "{\"ts_us\":";
  AppendJsonNumber(static_cast<double>(record.ts_us), &line);
  line.append(",\"level\":");
  AppendJsonString(ToString(record.level), &line);
  line.append(",\"component\":");
  AppendJsonString(record.component, &line);
  line.append(",\"message\":");
  AppendJsonString(record.message, &line);
  for (const auto& [key, value] : record.fields) {
    line.push_back(',');
    AppendJsonString(IsReservedJsonKey(key) ? "field." + key : key, &line);
    line.push_back(':');
    AppendJsonString(value, &line);
  }
  line.append("}\n");
  (*out_) << line << std::flush;
}

struct JsonFileSink::Impl {
  explicit Impl(const std::string& path)
      : out(path, std::ios::binary | std::ios::trunc), json(&out) {}
  std::ofstream out;
  JsonLinesSink json;
};

JsonFileSink::JsonFileSink(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

JsonFileSink::~JsonFileSink() = default;

bool JsonFileSink::ok() const { return impl_->out.is_open(); }

void JsonFileSink::Write(const LogRecord& record) {
  if (impl_->out.is_open()) impl_->json.Write(record);
}

Logger::Logger() : epoch_ns_(ProcessEpochNs()) {}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // intentionally leaked
  return *logger;
}

int64_t Logger::NowUs() const { return (MonotonicNowNs() - epoch_ns_) / 1000; }

void Logger::AddSink(std::unique_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(sink));
  has_sinks_.store(true, std::memory_order_relaxed);
}

void Logger::ClearSinks() {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

void Logger::Submit(LogRecord record) {
  record.ts_us = NowUs();
  // Stamp the active request's trace identity so one job's log lines can
  // be filtered out of an interleaved server log by trace_id.
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.active()) {
    record.fields.emplace_back("trace_id",
                               FormatTraceId(ctx.trace_hi, ctx.trace_lo));
    if (ctx.span_id != 0) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(ctx.span_id));
      record.fields.emplace_back("span_id", buf);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<LogSink>& sink : sinks_) {
    sink->Write(record);
  }
}

std::string LogEvent::RenderNumber(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string LogEvent::RenderNumber(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string LogEvent::RenderNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace obs
}  // namespace nmine
