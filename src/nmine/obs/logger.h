#ifndef NMINE_OBS_LOGGER_H_
#define NMINE_OBS_LOGGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace nmine {
namespace obs {

/// Severity levels, ordered. kOff is only a filter setting, never a record
/// level.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* ToString(LogLevel level);

/// Parses "trace|debug|info|warn|error|off" (case-sensitive).
std::optional<LogLevel> ParseLogLevel(const std::string& text);

/// One structured log record: severity, component tag, human message, and
/// ordered key/value fields (values pre-rendered to strings).
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* component = "";
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
  /// Microseconds since the process-wide logging clock epoch.
  int64_t ts_us = 0;
};

/// Output destination for log records. Sinks must tolerate concurrent
/// Write() calls (the Logger serializes them under its own mutex, so an
/// implementation only needs to be internally consistent).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Human-readable single-line text, e.g.
///   [ 0.001234] INFO  phase3: probe scan  probed=512 budget=200000
class TextSink : public LogSink {
 public:
  explicit TextSink(std::ostream* out) : out_(out) {}
  void Write(const LogRecord& record) override;

 private:
  std::ostream* out_;
};

/// One JSON object per line:
///   {"ts_us":1234,"level":"info","component":"phase3",
///    "message":"probe scan","probed":"512"}
class JsonLinesSink : public LogSink {
 public:
  explicit JsonLinesSink(std::ostream* out) : out_(out) {}
  void Write(const LogRecord& record) override;

 private:
  std::ostream* out_;
};

/// JsonLinesSink writing to a file it owns. Check ok() after construction.
class JsonFileSink : public LogSink {
 public:
  explicit JsonFileSink(const std::string& path);
  ~JsonFileSink() override;
  bool ok() const;
  void Write(const LogRecord& record) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide leveled logger with pluggable sinks. Filtering is a single
/// relaxed atomic load, so a disabled level costs one branch; with no sinks
/// attached even enabled records are dropped before formatting.
class Logger {
 public:
  static Logger& Global();

  /// Records strictly below `level` are dropped. Default: kOff (silent).
  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >=
               level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff && has_sinks_.load(std::memory_order_relaxed);
  }

  /// Appends a sink; the logger takes ownership.
  void AddSink(std::unique_ptr<LogSink> sink);

  /// Removes all sinks (used by tests and to detach file sinks at exit).
  void ClearSinks();

  /// Dispatches `record` (stamping ts_us) to every sink.
  void Submit(LogRecord record);

  /// Microseconds since the shared process clock epoch (obs/clock.h) —
  /// the same base trace spans, telemetry rows, and flight-recorder
  /// events are stamped with.
  int64_t NowUs() const;

 private:
  Logger();

  std::atomic<int> level_{static_cast<int>(LogLevel::kOff)};
  std::atomic<bool> has_sinks_{false};
  std::mutex mutex_;
  std::vector<std::unique_ptr<LogSink>> sinks_;
  int64_t epoch_ns_ = 0;
};

/// Builder for one record; submits on destruction. Obtain via NMINE_LOG so
/// that construction is skipped entirely when the level is filtered out.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* component) {
    record_.level = level;
    record_.component = component;
  }
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  ~LogEvent() { Logger::Global().Submit(std::move(record_)); }

  LogEvent& Msg(std::string message) {
    record_.message = std::move(message);
    return *this;
  }
  LogEvent& Str(std::string key, std::string value) {
    record_.fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  template <typename T>
  LogEvent& Num(std::string key, T value) {
    record_.fields.emplace_back(std::move(key), RenderNumber(value));
    return *this;
  }

 private:
  static std::string RenderNumber(double value);
  static std::string RenderNumber(int64_t value);
  static std::string RenderNumber(uint64_t value);
  template <typename T>
  static std::string RenderNumber(T value) {
    if constexpr (std::is_floating_point_v<T>) {
      return RenderNumber(static_cast<double>(value));
    } else if constexpr (std::is_signed_v<T>) {
      return RenderNumber(static_cast<int64_t>(value));
    } else {
      return RenderNumber(static_cast<uint64_t>(value));
    }
  }

  LogRecord record_;
};

}  // namespace obs
}  // namespace nmine

/// Compile-time floor: records below this level are removed from the
/// binary entirely (the whole NMINE_LOG statement is dead code).
/// 0 = trace keeps everything; override with
/// -DNMINE_MIN_LOG_LEVEL=2 to compile out trace/debug.
#ifndef NMINE_MIN_LOG_LEVEL
#define NMINE_MIN_LOG_LEVEL 0
#endif

/// Usage:
///   NMINE_LOG(kInfo, "phase3").Msg("probe scan").Num("probed", n);
/// Expands to nothing observable when filtered: one branch at runtime,
/// zero code when below NMINE_MIN_LOG_LEVEL.
#define NMINE_LOG(severity, component)                                      \
  if (static_cast<int>(::nmine::obs::LogLevel::severity) <                  \
          NMINE_MIN_LOG_LEVEL ||                                            \
      !::nmine::obs::Logger::Global().ShouldLog(                            \
          ::nmine::obs::LogLevel::severity)) {                              \
  } else                                                                    \
    ::nmine::obs::LogEvent(::nmine::obs::LogLevel::severity, component)

#endif  // NMINE_OBS_LOGGER_H_
