#ifndef NMINE_MINING_BORDER_COLLAPSE_MINER_H_
#define NMINE_MINING_BORDER_COLLAPSE_MINER_H_

#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/sequence_database.h"
#include "nmine/lattice/border.h"
#include "nmine/mining/miner_options.h"
#include "nmine/mining/mining_result.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"
#include "nmine/stats/chernoff.h"

namespace nmine {

/// Output of Phase 2 (Algorithm 4.2): the sample-based three-way
/// classification and the two borders embracing the ambiguous region.
struct SampleClassification {
  /// Patterns labelled frequent on the sample (match > min_match + eps).
  std::vector<Pattern> frequent;
  /// Patterns whose sample match falls within [min_match - eps,
  /// min_match + eps]; these require examination of the full database.
  std::vector<Pattern> ambiguous;
  /// Sample match for every frequent or ambiguous pattern.
  PatternMap<double> sample_values;
  /// FQT: maximal sample-frequent patterns.
  Border fqt;
  /// INFQT: maximal ambiguous patterns.
  Border infqt;
  /// How many patterns would have been ambiguous with the default spread
  /// R = 1 (Figure 11(b) measures the restricted-spread pruning power).
  size_t ambiguous_with_unit_spread = 0;
  /// Candidates examined per level on the sample.
  std::vector<LevelStats> level_stats;
  /// True if the max_candidates_per_level guardrail fired.
  bool truncated = false;
  /// Non-OK when the run was stopped (kCancelled / kDeadlineExceeded) or
  /// the memory budget could not hold even a one-counter batch
  /// (kResourceExhausted). The classification is then incomplete and the
  /// caller must fail the run with this status.
  Status status = Status::Ok();
};

/// Phase 2: level-wise traversal of the sample, labelling each candidate
/// frequent / ambiguous / infrequent via the Chernoff bound with the
/// restricted spread R = min_i match[d_i] (Claims 4.1, 4.2).
/// `symbol_match` holds the full-database per-symbol matches from Phase 1.
///
/// `governor` (optional) bounds the per-level counting batches: when the
/// budget binds, a level is counted in several exact in-memory slices
/// instead of one (free — no scans are involved). `run` (optional) is
/// polled at level and slice boundaries; see SampleClassification::status.
SampleClassification ClassifySamplePatterns(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<double>& symbol_match, Metric metric,
    const MinerOptions& options,
    runtime::ResourceGovernor* governor = nullptr,
    const runtime::RunControl* run = nullptr);

/// The paper's probabilistic algorithm (Section 4):
///   Phase 1 — one scan: per-symbol matches + random sample;
///   Phase 2 — in-memory sample classification via the Chernoff bound;
///   Phase 3 — border collapsing: probe the ambiguous region against the
///   full database in bisection order of lattice levels, batched by the
///   memory budget, collapsing the region by Apriori closure after every
///   scan (Algorithm 4.3).
///
/// Typically finishes in 2-4 scans regardless of pattern length (Fig 14).
class BorderCollapseMiner {
 public:
  BorderCollapseMiner(Metric metric, const MinerOptions& options)
      : metric_(metric), options_(options) {}

  MiningResult Mine(const SequenceDatabase& db,
                    const CompatibilityMatrix& c) const;

 private:
  Metric metric_;
  MinerOptions options_;
};

}  // namespace nmine

#endif  // NMINE_MINING_BORDER_COLLAPSE_MINER_H_
