#ifndef NMINE_MINING_DEPTH_FIRST_MINER_H_
#define NMINE_MINING_DEPTH_FIRST_MINER_H_

#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/sequence_database.h"
#include "nmine/mining/miner_options.h"
#include "nmine/mining/mining_result.h"

namespace nmine {

/// Depth-first projection-based miner — the memory-resident alternative
/// the paper surveys in Section 2.2 (Agarwal et al. [1], FreeSpan, SPADE:
/// "the depth-first approaches generally perform better than breadth-first
/// ones if the data is memory-resident").
///
/// The database is loaded once (a single accounted scan) and each lattice
/// node keeps a *projection*: for every sequence, the list of window
/// positions with a non-zero partial match and their running products.
/// Extending a pattern to the right multiplies each surviving window by
/// one more compatibility factor — no window is ever re-scanned from the
/// start. A branch is pruned as soon as its match drops below the
/// threshold (Apriori), so the recursion visits exactly the classical
/// candidate tree but with O(1) incremental cost per (window, extension).
///
/// Restrictions: the pattern space options (max_span/max_gap/max_level)
/// are honoured; results are identical to LevelwiseMiner. Memory is
/// O(total windows) for the root projection and shrinks with depth.
class DepthFirstMiner {
 public:
  DepthFirstMiner(Metric metric, const MinerOptions& options)
      : metric_(metric), options_(options) {}

  MiningResult Mine(const SequenceDatabase& db,
                    const CompatibilityMatrix& c) const;

 private:
  Metric metric_;
  MinerOptions options_;
};

}  // namespace nmine

#endif  // NMINE_MINING_DEPTH_FIRST_MINER_H_
