#include "nmine/mining/toivonen_miner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "nmine/lattice/pattern_counter.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"

namespace nmine {

MiningResult ToivonenMiner::Mine(const SequenceDatabase& db,
                                 const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.toivonen", "mining");
  NMINE_PROFILE_SCOPE("mine.toivonen");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  Rng rng(options_.seed);

  auto fail = [&](Status status) {
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    result.scans = db.scan_count() - scans_before;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EmitResultMetrics(result, "toivonen");
    return result;
  };

  // Phase 1 and Phase 2 are shared with the probabilistic algorithm; the
  // baselines differ only in how ambiguous patterns are finalized.
  const exec::ExecPolicy exec = ExecPolicyFor(options_);
  SymbolScanResult phase1 =
      metric_ == Metric::kMatch
          ? ScanSymbolsAndSample(db, c, options_.sample_size, &rng, exec)
          : ScanSymbolSupports(db, c.size(), options_.sample_size, &rng, exec);
  if (!phase1.status.ok()) return fail(phase1.status);
  result.symbol_match = phase1.symbol_match;

  SampleClassification cls =
      ClassifySamplePatterns(phase1.sample.records(), c, phase1.symbol_match,
                             metric_, options_);
  result.level_stats = cls.level_stats;
  result.truncated = cls.truncated;
  result.ambiguous_after_sample = cls.ambiguous.size();
  result.ambiguous_with_unit_spread = cls.ambiguous_with_unit_spread;
  result.accepted_from_sample = cls.frequent.size();

  for (const Pattern& p : cls.frequent) {
    result.frequent.Insert(p);
    result.values[p] = cls.sample_values[p];
  }

  // Level-wise finalization: verify ambiguous patterns against the full
  // database from the LOWEST level upward, pruning superpatterns of
  // verified-infrequent patterns along the way. Each batch of at most
  // max_counters_per_scan counters costs one scan.
  std::map<size_t, std::vector<Pattern>> by_level;
  for (const Pattern& p : cls.ambiguous) {
    by_level[p.NumSymbols()].push_back(p);
  }
  std::vector<Pattern> infrequent_so_far;

  for (auto& [level, patterns] : by_level) {
    std::vector<Pattern> todo;
    for (const Pattern& p : patterns) {
      bool dead = false;
      for (const Pattern& q : infrequent_so_far) {
        if (q.IsSubpatternOf(p)) {
          dead = true;
          break;
        }
      }
      if (!dead) todo.push_back(p);
    }
    reg.GetCounter("toivonen.verify.pruned")
        .Add(static_cast<int64_t>(patterns.size() - todo.size()));
    size_t pos = 0;
    while (pos < todo.size()) {
      obs::TraceSpan scan_span("toivonen.verify_scan", "toivonen");
      NMINE_PROFILE_SCOPE("toivonen.verify_scan");
      size_t batch_end =
          std::min(todo.size(), pos + options_.max_counters_per_scan);
      std::vector<Pattern> batch(todo.begin() + static_cast<long>(pos),
                                 todo.begin() + static_cast<long>(batch_end));
      std::vector<double> values;
      Status count_status =
          metric_ == Metric::kMatch
              ? TryCountMatches(db, c, batch, &values, exec)
              : TryCountSupports(db, batch, &values, exec);
      if (!count_status.ok()) return fail(std::move(count_status));
      size_t batch_frequent = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (values[i] >= options_.min_threshold) {
          result.frequent.Insert(batch[i]);
          result.values[batch[i]] = values[i];
          ++batch_frequent;
        } else {
          infrequent_so_far.push_back(batch[i]);
        }
      }
      reg.GetCounter("toivonen.verify.scans").Increment();
      reg.GetCounter("toivonen.verify.patterns")
          .Add(static_cast<int64_t>(batch.size()));
      scan_span.Arg("level", level)
          .Arg("verified", batch.size())
          .Arg("frequent", batch_frequent);
      NMINE_LOG(kDebug, "toivonen")
          .Msg("verification scan")
          .Num("level", level)
          .Num("verified", batch.size())
          .Num("frequent", batch_frequent);
      pos = batch_end;
    }
  }

  BuildBorder(&result);
  result.scans = db.scan_count() - scans_before;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EmitResultMetrics(result, "toivonen");
  return result;
}

}  // namespace nmine
