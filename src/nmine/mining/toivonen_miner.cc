#include "nmine/mining/toivonen_miner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "nmine/lattice/pattern_counter.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/governed_count.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"
#include "nmine/runtime/run_status.h"
#include "nmine/stats/chernoff.h"

namespace nmine {

MiningResult ToivonenMiner::Mine(const SequenceDatabase& db,
                                 const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.toivonen", "mining");
  NMINE_PROFILE_SCOPE("mine.toivonen");
  runtime::PublishPhase("mine.toivonen");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  Rng rng(options_.seed);
  const runtime::RunControl* run = options_.run_control;
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);

  auto fail = [&](Status status) {
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    result.scans = db.scan_count() - scans_before;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    result.degradation_steps = governor.degradation_steps();
    EmitResultMetrics(result, "toivonen");
    return result;
  };

  // Phase 1 and Phase 2 are shared with the probabilistic algorithm; the
  // baselines differ only in how ambiguous patterns are finalized.
  const exec::ExecPolicy exec = ExecPolicyFor(options_);
  SymbolScanResult phase1 =
      metric_ == Metric::kMatch
          ? ScanSymbolsAndSample(db, c, options_.sample_size, &rng, exec)
          : ScanSymbolSupports(db, c.size(), options_.sample_size, &rng, exec);
  if (!phase1.status.ok()) return fail(phase1.status);
  result.symbol_match = phase1.symbol_match;

  // Memory-budget admission of the in-memory sample (same degradation
  // ladder as the probabilistic miner: a shrunken sample widens the
  // Chernoff band and sends more patterns to exact verification).
  std::vector<SequenceRecord> sample_records = phase1.sample.records();
  size_t sample_bytes = 0;
  for (const SequenceRecord& r : sample_records) {
    sample_bytes += runtime::RecordBytes(r);
  }
  const size_t charged_before_sample = governor.charged_bytes();
  size_t kept = governor.AdmitSample(sample_records.size(), sample_bytes,
                                     /*min_keep=*/1);
  if (kept == 0 && !sample_records.empty()) {
    return fail(Status::ResourceExhausted(
        "memory budget cannot hold even a one-sequence sample"));
  }
  if (kept < sample_records.size()) sample_records.resize(kept);
  result.effective_sample_size = sample_records.size();
  result.final_epsilon =
      sample_records.empty()
          ? 0.0
          : ChernoffEpsilon(1.0, options_.delta, sample_records.size());

  SampleClassification cls =
      ClassifySamplePatterns(sample_records, c, phase1.symbol_match, metric_,
                             options_, &governor, run);
  if (!cls.status.ok()) return fail(cls.status);
  // The sample is dead after Phase 2: return its bytes so verification
  // batches get the full remaining budget.
  governor.Release(governor.charged_bytes() - charged_before_sample);
  sample_records.clear();
  sample_records.shrink_to_fit();
  result.level_stats = cls.level_stats;
  result.truncated = cls.truncated;
  result.ambiguous_after_sample = cls.ambiguous.size();
  result.ambiguous_with_unit_spread = cls.ambiguous_with_unit_spread;
  result.accepted_from_sample = cls.frequent.size();

  for (const Pattern& p : cls.frequent) {
    result.frequent.Insert(p);
    result.values[p] = cls.sample_values[p];
  }

  // Level-wise finalization: verify ambiguous patterns against the full
  // database from the LOWEST level upward, pruning superpatterns of
  // verified-infrequent patterns along the way. Each batch of at most
  // max_counters_per_scan counters costs one scan; the memory budget may
  // cap batches further (more scans, results still exact).
  std::map<size_t, std::vector<Pattern>> by_level;
  for (const Pattern& p : cls.ambiguous) {
    by_level[p.NumSymbols()].push_back(p);
  }
  std::vector<Pattern> infrequent_so_far;

  for (auto& [level, patterns] : by_level) {
    std::vector<Pattern> todo;
    for (const Pattern& p : patterns) {
      bool dead = false;
      for (const Pattern& q : infrequent_so_far) {
        if (q.IsSubpatternOf(p)) {
          dead = true;
          break;
        }
      }
      if (!dead) todo.push_back(p);
    }
    reg.GetCounter("toivonen.verify.pruned")
        .Add(static_cast<int64_t>(patterns.size() - todo.size()));
    size_t pos = 0;
    while (pos < todo.size()) {
      // Stop between verification scans, never mid-scan.
      Status rs = runtime::CheckRun(run);
      if (!rs.ok()) return fail(rs);
      obs::TraceSpan scan_span("toivonen.verify_scan", "toivonen");
      NMINE_PROFILE_SCOPE("toivonen.verify_scan");
      size_t batch_cap = options_.max_counters_per_scan;
      if (!governor.unlimited()) {
        batch_cap = governor.AdmitBatch(batch_cap, CounterBytes(todo[pos]));
        if (batch_cap == 0) {
          return fail(Status::ResourceExhausted(
              "memory budget cannot hold a single verification counter"));
        }
      }
      size_t batch_end = std::min(todo.size(), pos + batch_cap);
      std::vector<Pattern> batch(todo.begin() + static_cast<long>(pos),
                                 todo.begin() + static_cast<long>(batch_end));
      std::vector<double> values;
      Status count_status =
          metric_ == Metric::kMatch
              ? TryCountMatches(db, c, batch, &values, exec)
              : TryCountSupports(db, batch, &values, exec);
      if (!count_status.ok()) return fail(std::move(count_status));
      size_t batch_frequent = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (values[i] >= options_.min_threshold) {
          result.frequent.Insert(batch[i]);
          result.values[batch[i]] = values[i];
          ++batch_frequent;
        } else {
          infrequent_so_far.push_back(batch[i]);
        }
      }
      reg.GetCounter("toivonen.verify.scans").Increment();
      reg.GetCounter("toivonen.verify.patterns")
          .Add(static_cast<int64_t>(batch.size()));
      scan_span.Arg("level", level)
          .Arg("verified", batch.size())
          .Arg("frequent", batch_frequent);
      NMINE_LOG(kDebug, "toivonen")
          .Msg("verification scan")
          .Num("level", level)
          .Num("verified", batch.size())
          .Num("frequent", batch_frequent);
      runtime::PublishProgress("toivonen.verify",
                               static_cast<int64_t>(level),
                               static_cast<int64_t>(batch_frequent));
      pos = batch_end;
    }
  }

  BuildBorder(&result);
  result.scans = db.scan_count() - scans_before;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.degradation_steps = governor.degradation_steps();
  EmitResultMetrics(result, "toivonen");
  return result;
}

}  // namespace nmine
