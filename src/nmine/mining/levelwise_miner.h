#ifndef NMINE_MINING_LEVELWISE_MINER_H_
#define NMINE_MINING_LEVELWISE_MINER_H_

#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/sequence_database.h"
#include "nmine/mining/miner_options.h"
#include "nmine/mining/mining_result.h"

namespace nmine {

/// The deterministic Apriori baseline ("any algorithm powered by the
/// Apriori property can be adopted to mine frequent patterns according to
/// the match metric", Section 3): breadth-first level-wise search, one full
/// database scan per lattice level. Exact — used as the ground-truth oracle
/// for the probabilistic algorithm and for the robustness experiments
/// (Figures 7-9).
class LevelwiseMiner {
 public:
  LevelwiseMiner(Metric metric, const MinerOptions& options)
      : metric_(metric), options_(options) {}

  /// Mines the whole database. `c` defines the alphabet size m; it is only
  /// consulted for probabilities when the metric is kMatch.
  MiningResult Mine(const SequenceDatabase& db,
                    const CompatibilityMatrix& c) const;

  /// In-memory variant over raw records (no scans are charged); used for
  /// mining samples.
  MiningResult MineRecords(const std::vector<SequenceRecord>& records,
                           const CompatibilityMatrix& c) const;

  /// Per-pattern-threshold variant: pattern P qualifies iff its metric is
  /// >= threshold_of(P). Used with MatchCalibration to compensate the
  /// systematic match deflation under noise (see eval/calibration.h).
  /// Note: Apriori pruning is heuristic here when threshold_of is not
  /// constant — a pattern can in principle clear its own (lower) threshold
  /// while a subpattern misses its (higher) one; in the calibrated setting
  /// the two effects cancel in expectation.
  MiningResult MineWithThreshold(
      const SequenceDatabase& db, const CompatibilityMatrix& c,
      const std::function<double(const Pattern&)>& threshold_of) const;

 private:
  Metric metric_;
  MinerOptions options_;
};

/// Populates `result->border` from `result->frequent` (maximal elements).
/// Shared by all miners.
void BuildBorder(MiningResult* result);

}  // namespace nmine

#endif  // NMINE_MINING_LEVELWISE_MINER_H_
