#ifndef NMINE_MINING_MINING_RESULT_H_
#define NMINE_MINING_MINING_RESULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nmine/core/pattern.h"
#include "nmine/core/status.h"
#include "nmine/lattice/border.h"
#include "nmine/lattice/pattern_set.h"

namespace nmine {

/// Per-level statistics of a level-wise traversal (Figure 9 reports the
/// number of candidate patterns at each level).
struct LevelStats {
  size_t level = 0;           // number of non-eternal symbols k
  size_t num_candidates = 0;  // candidates counted at this level
  size_t num_frequent = 0;    // of which frequent
};

/// Output of any miner: the frequent-pattern set, its border, metric
/// values, and cost accounting.
struct MiningResult {
  /// Outcome of the run. Non-OK when a database scan failed and could not
  /// be recovered by retries; the pattern sets are then empty (a partial
  /// answer would be indistinguishable from a complete one) and only the
  /// cost accounting below remains meaningful.
  Status status = Status::Ok();

  bool ok() const { return status.ok(); }

  /// All frequent patterns (match/support >= threshold).
  PatternSet frequent;

  /// The border: maximal frequent patterns.
  Border border;

  /// Metric value for each frequent pattern. For the probabilistic miner,
  /// patterns never probed against the full database carry their sample
  /// estimate (Claim 4.1 accepts them with probability 1 - delta).
  PatternMap<double> values;

  /// Candidate counts per level (deterministic level-wise miners only).
  std::vector<LevelStats> level_stats;

  /// Full passes over the sequence database.
  int64_t scans = 0;

  /// Wall-clock seconds spent mining.
  double seconds = 0.0;

  /// True if the max_candidates_per_level guardrail fired; the frequent
  /// set may then be incomplete.
  bool truncated = false;

  // --- Probabilistic-miner diagnostics (Sections 4.2, 5.3-5.5) ---

  /// Ambiguous patterns after the sample phase, with the restricted spread.
  size_t ambiguous_after_sample = 0;

  /// Ambiguous patterns the sample phase would have produced with the
  /// default spread R = 1 (Figure 11(b) compares the two).
  size_t ambiguous_with_unit_spread = 0;

  /// Patterns labelled frequent directly from the sample (unverified).
  size_t accepted_from_sample = 0;

  /// Phase-1 per-symbol match (index = symbol id).
  std::vector<double> symbol_match;

  // --- Run lifecycle / resource governance (runtime/resource_governor.h) ---

  /// Sample sequences actually kept in memory after any memory-budget
  /// degradation (== the configured sample size, capped at the database
  /// size, when the budget never bound). 0 for miners without a sample.
  size_t effective_sample_size = 0;

  /// The unit-spread Chernoff half-width epsilon recomputed from the
  /// effective sample size (0.0 for miners without a sample phase).
  double final_epsilon = 0.0;

  /// Degradation-ladder steps the resource governor took (probe-batch
  /// shrink and sample shrink each count once per run).
  int degradation_steps = 0;

  /// Frequent patterns in deterministic order.
  std::vector<Pattern> FrequentSorted() const {
    return frequent.ToSortedVector();
  }

  /// Total candidates across levels.
  size_t TotalCandidates() const {
    size_t n = 0;
    for (const LevelStats& s : level_stats) n += s.num_candidates;
    return n;
  }
};

/// Folds a finished run's diagnostics into the global metrics registry
/// (obs/metrics.h) under the shared `mining.*` / `phase2.*` names, so runs
/// of every algorithm are comparable from the same snapshot. The fields on
/// MiningResult remain the per-run snapshot view of the same quantities.
/// Every miner calls this once at the end of Mine().
void EmitResultMetrics(const MiningResult& result, const char* algorithm);

}  // namespace nmine

#endif  // NMINE_MINING_MINING_RESULT_H_
