#ifndef NMINE_MINING_MINER_OPTIONS_H_
#define NMINE_MINING_MINER_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "nmine/core/metric.h"
#include "nmine/core/pattern.h"
#include "nmine/core/status.h"
#include "nmine/exec/policy.h"
#include "nmine/lattice/candidate_gen.h"
#include "nmine/runtime/run_control.h"

namespace nmine {

/// Options shared by all miners. Probabilistic-algorithm knobs are ignored
/// by the deterministic miners.
struct MinerOptions {
  /// min_match (or min_support) threshold qualifying frequent patterns.
  double min_threshold = 0.001;

  /// Shape of the pattern space (span / gap limits, Definition 3.2).
  PatternSpaceOptions space;

  /// Safety cap on the number of lattice levels explored.
  size_t max_level = std::numeric_limits<size_t>::max();

  /// Guardrail: maximum candidates generated per lattice level. When the
  /// Chernoff band is wider than the threshold (tiny samples), the set of
  /// frequent-or-ambiguous patterns stops shrinking level over level and
  /// candidate generation would grow as m^k; this cap bounds the blow-up.
  /// Hitting it sets MiningResult::truncated (results may then miss
  /// patterns). Choose sample sizes so that epsilon < min_threshold to
  /// stay exact.
  size_t max_candidates_per_level = 2000000;

  // --- Probabilistic algorithm (Section 4) ---

  /// Number of sample sequences that fit in memory (Phase 1).
  size_t sample_size = 1000;

  /// Chernoff-bound failure probability; the paper uses 1 - delta = 0.9999.
  double delta = 1e-4;

  /// Restrict the spread R to the minimum single-symbol match (Claim 4.2)
  /// instead of the default R = 1.
  bool use_restricted_spread = true;

  /// Memory budget: maximum number of pattern counters maintained during
  /// one scan of the full database ("until the memory is filled up",
  /// Algorithm 4.3). Also batches the Toivonen baseline's verification.
  size_t max_counters_per_scan = 200000;

  /// Seed for sampling (Phase 1 is the only randomized step).
  uint64_t seed = 42;

  // --- Parallel execution (src/nmine/exec) ---

  /// Worker threads for scan-shaped hot paths (pattern counting, Phase-1
  /// symbol scanning, Phase-2 sample mining, Phase-3 probe batches);
  /// 0 = hardware concurrency. Results are bit-identical for every
  /// setting (deterministic sharded reduction), and the number of charged
  /// database scans never changes — only wall-clock time does.
  size_t num_threads = 1;

  // --- Fault tolerance (border-collapsing miner) ---

  /// Miner-level retries of a failed Phase-3 probe scan, on top of any
  /// retrying the database itself performs. Only the unresolved probe
  /// batch is re-counted; resolved patterns are never re-probed.
  size_t phase3_scan_retries = 1;

  /// When set, Phase-3 probe scans are delegated to this hook instead of
  /// scanning the database in-process (distributed counting: the
  /// coordinator farms the batch out to sharded workers). The hook MUST
  /// return values bit-identical to TryCountMatches/TryCountSupports —
  /// i.e. merge per-exec-shard partials in ascending shard order and
  /// divide by the sequence count once — or distributed results drift
  /// from the serial CLI. Each invocation is charged as one scan (the
  /// database's own scan counter does not move); transient failures are
  /// retried like any other probe scan. Phases 1-2 always run locally.
  std::function<Status(const std::vector<Pattern>& probe,
                       std::vector<double>* values)>
      phase3_count_override;

  /// When non-empty, Phase-3 probe state is checkpointed to this file
  /// after every successful scan. A later run with the same options and
  /// database resumes border collapsing from the unresolved patterns
  /// instead of redoing Phases 1-3 from scratch. The file is removed on
  /// successful completion.
  std::string phase3_checkpoint_path;

  // --- Run lifecycle governance (src/nmine/runtime) ---

  /// Cooperative cancellation / deadline token, shared with the driver
  /// (CLI signal handlers, --deadline). Polled at shard, level, and batch
  /// boundaries; a stopped run flushes its checkpoint and returns
  /// kCancelled / kDeadlineExceeded with an EMPTY pattern set — never a
  /// silently-partial one. nullptr = ungoverned (no polling overhead).
  const runtime::RunControl* run_control = nullptr;

  /// Approximate cap, in bytes, on mining working memory (the in-memory
  /// sample, candidate pattern batches, borders). 0 = unlimited. When the
  /// budget binds, the run degrades instead of failing: first Phase-3
  /// probe batches shrink below max_counters_per_scan (more scans, still
  /// exact), then the sample shrinks and epsilon is recomputed from the
  /// new n (wider ambiguous band, still exact); only when even the floor
  /// cannot fit does mining fail with kResourceExhausted.
  size_t memory_budget_bytes = 0;

  /// When non-empty, whole-run checkpoints are written at every phase
  /// boundary (after Phase 1, after Phase 2, after every Phase-3 probe
  /// scan), and a cancelled/expired run flushes its progress here before
  /// returning. Supersedes phase3_checkpoint_path (which only covers
  /// Phase 3) when both are set. The file is removed on success.
  std::string run_checkpoint_path;
};

/// The exec policy implied by these options (shard size stays at the
/// deterministic default; the thread count and the cancellation token are
/// the user knobs).
inline exec::ExecPolicy ExecPolicyFor(const MinerOptions& options) {
  exec::ExecPolicy policy;
  policy.num_threads = options.num_threads;
  policy.run = options.run_control;
  return policy;
}

}  // namespace nmine

#endif  // NMINE_MINING_MINER_OPTIONS_H_
