#ifndef NMINE_MINING_MAX_MINER_H_
#define NMINE_MINING_MAX_MINER_H_

#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/sequence_database.h"
#include "nmine/mining/miner_options.h"
#include "nmine/mining/mining_result.h"

namespace nmine {

/// Adaptation of Max-Miner (Bayardo, SIGMOD'98) to sequential patterns
/// under the match metric — the deterministic look-ahead baseline of
/// Section 5.6 ("the only modification to the Max-Miner is the computation
/// of match value of a pattern instead of support value").
///
/// Like the original, it targets the *maximal* frequent patterns (the
/// border) rather than enumerating every frequent pattern, and it uses
/// look-ahead: alongside the level-(k+1) candidates, each scan also counts
/// "jump" candidates — maximal chains assembled in memory by overlap-
/// joining the frequent level-k patterns (the sequential analogue of
/// counting head ∪ tail of a candidate group). A frequent jump certifies
/// all of its subpatterns frequent by the Apriori property, so subsequent
/// levels whose candidates are all covered by certified patterns need no
/// database scan at all. With one dominant long pattern this terminates in
/// a handful of scans; with many interleaved patterns it degrades towards
/// one scan per level, which is the behaviour the paper's Figure 14
/// penalizes.
///
/// Look-ahead chains require contiguous patterns (max_gap == 0); in gapped
/// mode the algorithm runs as pure level-wise search over maximal
/// patterns.
///
/// The result's `frequent` set is complete (covered candidates are still
/// enumerated — they just skip counting); `values` holds entries only for
/// patterns that were actually counted. `border` is the complete set of
/// maximal frequent patterns.
class MaxMiner {
 public:
  MaxMiner(Metric metric, const MinerOptions& options)
      : metric_(metric), options_(options) {}

  MiningResult Mine(const SequenceDatabase& db,
                    const CompatibilityMatrix& c) const;

 private:
  Metric metric_;
  MinerOptions options_;
};

}  // namespace nmine

#endif  // NMINE_MINING_MAX_MINER_H_
