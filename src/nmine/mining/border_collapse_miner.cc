#include "nmine/mining/border_collapse_miner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "nmine/lattice/halfway.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/mining/governed_count.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/run_checkpoint.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace {

double PatternSpread(const Pattern& p,
                     const std::vector<double>& symbol_match) {
  double r = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId s = p[i];
    if (IsWildcard(s)) continue;
    double sm = symbol_match[static_cast<size_t>(s)];
    if (sm < r) r = sm;
  }
  return r;
}

}  // namespace

SampleClassification ClassifySamplePatterns(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<double>& symbol_match, Metric metric,
    const MinerOptions& options, runtime::ResourceGovernor* governor,
    const runtime::RunControl* run) {
  obs::TraceSpan phase2_span("phase2.sample_mining", "phase2");
  NMINE_PROFILE_SCOPE("phase2.sample_mining");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  SampleClassification out;
  const size_t m = c.size();
  const size_t n = records.size();
  const double unit_eps =
      n > 0 ? ChernoffEpsilon(1.0, options.delta, n) : 0.0;

  std::vector<SymbolId> all_symbols(m);
  for (size_t i = 0; i < m; ++i) all_symbols[i] = static_cast<SymbolId>(i);

  // keep = frequent-or-ambiguous patterns, the Apriori-viable set for
  // candidate generation (Section 4.2: "P may be considered a candidate
  // pattern iff every sub-pattern of P is either frequent or ambiguous").
  PatternSet keep;
  std::vector<Pattern> keep_level;
  std::vector<SymbolId> keep_symbols;

  // Phase 2 runs on the in-memory sample, so no scans are charged; the
  // exec policy still shards the per-level counting across workers, and
  // the governor may slice a level into several exact batches (also free).
  const exec::ExecPolicy exec = ExecPolicyFor(options);
  const BatchCountFn count_records =
      [&records, &c, metric, exec, run](const std::vector<Pattern>& batch,
                                        std::vector<double>* vals) {
        *vals = metric == Metric::kMatch
                    ? CountMatchesInRecords(records, c, batch, exec)
                    : CountSupportsInRecords(records, batch, exec);
        // A stop mid-batch leaves garbage values; surface it here so the
        // level loop below aborts instead of classifying noise.
        return runtime::CheckRun(run);
      };

  std::vector<Pattern> candidates = Level1Candidates(all_symbols);
  for (size_t level = 1; level <= options.max_level && !candidates.empty();
       ++level) {
    obs::TraceSpan level_span("phase2.level", "phase2");
    level_span.Arg("level", level).Arg("candidates", candidates.size());
    std::vector<double> values;
    out.status = GovernedCount(candidates, governor, run, count_records,
                               &values);
    if (!out.status.ok()) return out;
    LevelStats stats;
    stats.level = level;
    stats.num_candidates = candidates.size();
    keep_level.clear();
    size_t level_ambiguous = 0;
    double eps_sum = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Pattern& p = candidates[i];
      double spread = options.use_restricted_spread
                          ? PatternSpread(p, symbol_match)
                          : 1.0;
      double eps =
          n > 0 ? ChernoffEpsilon(spread, options.delta, n) : 0.0;
      eps_sum += eps;
      PatternLabel label =
          ClassifyMatch(values[i], options.min_threshold, eps);
      PatternLabel unit_label =
          ClassifyMatch(values[i], options.min_threshold, unit_eps);
      if (unit_label == PatternLabel::kAmbiguous) {
        ++out.ambiguous_with_unit_spread;
      }
      if (label == PatternLabel::kInfrequent) continue;
      out.sample_values[p] = values[i];
      keep.Insert(p);
      keep_level.push_back(p);
      if (level == 1) keep_symbols.push_back(p[0]);
      if (label == PatternLabel::kFrequent) {
        out.frequent.push_back(p);
        out.fqt.Insert(p);
        ++stats.num_frequent;
      } else {
        out.ambiguous.push_back(p);
        out.infqt.Insert(p);
        ++level_ambiguous;
      }
    }
    out.level_stats.push_back(stats);

    // Per-level accounting: the frequent/ambiguous/infrequent split and
    // the mean Chernoff band width (the quantity that drives the split).
    const size_t level_infrequent =
        stats.num_candidates - stats.num_frequent - level_ambiguous;
    const double mean_band =
        stats.num_candidates > 0
            ? eps_sum / static_cast<double>(stats.num_candidates)
            : 0.0;
    reg.GetCounter("phase2.levels").Increment();
    reg.GetCounter("phase2.candidates")
        .Add(static_cast<int64_t>(stats.num_candidates));
    reg.GetCounter("phase2.frequent")
        .Add(static_cast<int64_t>(stats.num_frequent));
    reg.GetCounter("phase2.ambiguous")
        .Add(static_cast<int64_t>(level_ambiguous));
    reg.GetCounter("phase2.infrequent")
        .Add(static_cast<int64_t>(level_infrequent));
    reg.GetHistogram("phase2.band_width",
                     {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5})
        .Observe(mean_band);
    level_span.Arg("frequent", stats.num_frequent)
        .Arg("ambiguous", level_ambiguous)
        .Arg("infrequent", level_infrequent)
        .Arg("mean_band_width", mean_band);
    NMINE_LOG(kDebug, "phase2")
        .Msg("sample level classified")
        .Num("level", level)
        .Num("candidates", stats.num_candidates)
        .Num("frequent", stats.num_frequent)
        .Num("ambiguous", level_ambiguous)
        .Num("infrequent", level_infrequent)
        .Num("mean_band_width", mean_band);

    if (keep_level.empty()) break;
    candidates = NextLevelCandidates(
        keep_level, keep_symbols, options.space,
        [&keep](const Pattern& sub) { return keep.Contains(sub); },
        options.max_candidates_per_level);
    if (candidates.size() >= options.max_candidates_per_level) {
      out.truncated = true;
      reg.GetCounter("phase2.truncations").Increment();
      NMINE_LOG(kWarn, "phase2")
          .Msg("candidate guardrail fired")
          .Num("level", level + 1)
          .Num("max_candidates_per_level",
               options.max_candidates_per_level);
    }
  }
  return out;
}

MiningResult BorderCollapseMiner::Mine(const SequenceDatabase& db,
                                       const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.border_collapse", "mining");
  NMINE_PROFILE_SCOPE("mine.border_collapse");
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const runtime::RunControl* run = options_.run_control;
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);

  auto finish = [&](MiningResult* r) {
    r->scans = db.scan_count() - scans_before + r->scans;
    r->seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    r->degradation_steps = governor.degradation_steps();
    EmitResultMetrics(*r, "collapse");
  };
  auto fail = [&](Status status) {
    // A partial pattern set would be indistinguishable from a complete
    // one, so failure returns only the status and the cost accounting.
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    finish(&result);
    return result;
  };

  // Whole-run checkpointing (stage 1/2/3 boundaries) supersedes the
  // legacy Phase-3-only path when both are configured.
  const bool whole_run = !options_.run_checkpoint_path.empty();
  const std::string& ckpt_path = whole_run
                                     ? options_.run_checkpoint_path
                                     : options_.phase3_checkpoint_path;

  auto make_guard = [&] {
    runtime::RunCheckpoint g;
    g.metric = metric_;
    g.min_threshold = options_.min_threshold;
    g.num_sequences = db.NumSequences();
    g.total_symbols = db.TotalSymbols();
    g.sample_size = options_.sample_size;
    g.seed = options_.seed;
    g.delta = options_.delta;
    return g;
  };

  // State the Phase-3 loop runs on: the unresolved ambiguous region and
  // the sample estimates closure-frequent patterns inherit. Filled either
  // by Phases 1-2 or from a checkpoint of an interrupted run.
  std::vector<Pattern> ambiguous;
  PatternMap<double> sample_values;
  std::vector<SequenceRecord> sample_records;
  bool resumed = false;       // stage >= 2: Phases 1-2 are final
  bool have_phase1 = false;   // stage 1: Phase 1 is final, Phase 2 reruns

  if (!ckpt_path.empty()) {
    runtime::RunCheckpoint cp;
    Status s = runtime::LoadRunCheckpoint(ckpt_path, make_guard(), &cp);
    if (s.ok()) {
      reg.GetCounter("phase3.resumes").Increment();
      NMINE_LOG(kInfo, "phase3")
          .Msg("resuming border collapse from checkpoint")
          .Str("path", ckpt_path)
          .Str("stage", ToString(cp.stage))
          .Num("resolved", cp.resolved_frequent.size())
          .Num("unresolved", cp.unresolved.size())
          .Num("scans_completed", cp.scans_completed);
      result.symbol_match = cp.symbol_match;
      result.ambiguous_after_sample = cp.ambiguous_after_sample;
      result.ambiguous_with_unit_spread = cp.ambiguous_with_unit_spread;
      result.accepted_from_sample = cp.accepted_from_sample;
      result.truncated = cp.truncated;
      result.effective_sample_size = cp.effective_sample_size;
      result.final_epsilon = cp.final_epsilon;
      result.scans = cp.scans_completed;  // finish() adds this run's scans
      if (cp.stage == runtime::RunStage::kPhase1Done) {
        // Phase 1's scan is already consumed; its sample re-enters the
        // pipeline exactly as if the scan had just finished.
        sample_records = std::move(cp.sample);
        have_phase1 = true;
      } else {
        resumed = true;
        for (const auto& [p, v] : cp.resolved_frequent) {
          result.frequent.Insert(p);
          result.values[p] = v;
        }
        for (const auto& [p, v] : cp.unresolved) {
          ambiguous.push_back(p);
          sample_values[p] = v;
        }
      }
    } else if (s.code() != StatusCode::kNotFound) {
      NMINE_LOG(kWarn, "phase3")
          .Msg("ignoring unusable checkpoint; starting fresh")
          .Str("path", ckpt_path)
          .Str("status", s.ToString());
    }
  }

  const exec::ExecPolicy exec = ExecPolicyFor(options_);

  auto write_checkpoint = [&](runtime::RunStage stage) {
    runtime::RunCheckpoint cp = make_guard();
    cp.stage = stage;
    cp.scans_completed = db.scan_count() - scans_before + result.scans;
    cp.ambiguous_after_sample = result.ambiguous_after_sample;
    cp.ambiguous_with_unit_spread = result.ambiguous_with_unit_spread;
    cp.accepted_from_sample = result.accepted_from_sample;
    cp.truncated = result.truncated;
    cp.effective_sample_size = result.effective_sample_size;
    cp.final_epsilon = result.final_epsilon;
    cp.symbol_match = result.symbol_match;
    if (stage == runtime::RunStage::kPhase1Done) {
      cp.sample = sample_records;
    } else {
      for (const Pattern& p : result.frequent.ToSortedVector()) {
        cp.resolved_frequent.emplace_back(p, result.values[p]);
      }
      for (const Pattern& p : ambiguous) {
        cp.unresolved.emplace_back(p, sample_values[p]);
      }
    }
    Status s = runtime::WriteRunCheckpoint(ckpt_path, cp);
    if (s.ok()) {
      reg.GetCounter("runtime.checkpoints").Increment();
      if (stage != runtime::RunStage::kPhase1Done) {
        reg.GetCounter("phase3.checkpoints").Increment();
      }
    } else {
      NMINE_LOG(kWarn, "phase3")
          .Msg("checkpoint write failed; continuing without")
          .Str("path", ckpt_path)
          .Str("status", s.ToString());
    }
  };

  if (!resumed) {
    if (!have_phase1) {
      // ---- Phase 1: symbol matches + sample, one scan (Algorithm 4.1).
      runtime::PublishPhase("phase1");
      Status rs = runtime::CheckRun(run);
      if (!rs.ok()) return fail(rs);
      Rng rng(options_.seed);
      SymbolScanResult phase1 =
          metric_ == Metric::kMatch
              ? ScanSymbolsAndSample(db, c, options_.sample_size, &rng, exec)
              : ScanSymbolSupports(db, c.size(), options_.sample_size, &rng,
                                   exec);
      if (!phase1.status.ok()) return fail(phase1.status);
      result.symbol_match = phase1.symbol_match;
      sample_records = phase1.sample.records();
    }

    // ---- Memory-budget admission (degradation ladder step 2, decided at
    // the Phase-1 boundary): shrink the in-memory sample when it does not
    // fit. The kept prefix re-derives epsilon from the smaller n, so the
    // ambiguous band widens and more patterns are probed exactly —
    // degraded cost, never degraded correctness.
    size_t sample_bytes = 0;
    for (const SequenceRecord& r : sample_records) {
      sample_bytes += runtime::RecordBytes(r);
    }
    const size_t charged_before_sample = governor.charged_bytes();
    size_t kept = governor.AdmitSample(sample_records.size(), sample_bytes,
                                       /*min_keep=*/1);
    if (kept == 0 && !sample_records.empty()) {
      return fail(Status::ResourceExhausted(
          "memory budget cannot hold even a one-sequence sample"));
    }
    if (kept < sample_records.size()) sample_records.resize(kept);
    result.effective_sample_size = sample_records.size();
    result.final_epsilon =
        sample_records.empty()
            ? 0.0
            : ChernoffEpsilon(1.0, options_.delta, sample_records.size());

    // The Phase-1 scan is consumed: snapshot it so a later kill skips
    // straight to Phase 2 on resume.
    if (whole_run && !have_phase1) {
      write_checkpoint(runtime::RunStage::kPhase1Done);
    }

    // ---- Phase 2: classify patterns on the in-memory sample.
    runtime::PublishPhase("phase2");
    Status rs = runtime::CheckRun(run);
    if (!rs.ok()) return fail(rs);  // the stage-1 snapshot stays on disk
    SampleClassification cls =
        ClassifySamplePatterns(sample_records, c, result.symbol_match,
                               metric_, options_, &governor, run);
    if (!cls.status.ok()) return fail(cls.status);
    // The sample is dead after Phase 2 (its checkpoint copy, when wanted,
    // is already on disk): return its bytes so Phase-3 probe batches get
    // the full remaining budget.
    governor.Release(governor.charged_bytes() - charged_before_sample);
    sample_records.clear();
    sample_records.shrink_to_fit();
    result.level_stats = cls.level_stats;
    result.truncated = cls.truncated;
    result.ambiguous_after_sample = cls.ambiguous.size();
    result.ambiguous_with_unit_spread = cls.ambiguous_with_unit_spread;
    result.accepted_from_sample = cls.frequent.size();

    // Sample-frequent patterns are accepted with probability 1 - delta
    // (Claim 4.1); they carry their sample estimates.
    for (const Pattern& p : cls.frequent) {
      result.frequent.Insert(p);
      result.values[p] = cls.sample_values[p];
    }
    ambiguous = std::move(cls.ambiguous);
    sample_values = std::move(cls.sample_values);

    // The ambiguous region lives until Phase 3 resolves it; account it.
    size_t region_bytes = 0;
    for (const Pattern& p : ambiguous) {
      region_bytes += runtime::PatternBytes(p) + sizeof(double);
    }
    Status charge = governor.Charge("ambiguous-region", region_bytes);
    if (!charge.ok()) return fail(std::move(charge));

    // Checkpoint the Phase-1/2 output before the first probe scan, so even
    // a first-scan fault resumes without repeating the sample phase.
    if (!ckpt_path.empty() && !ambiguous.empty()) {
      write_checkpoint(runtime::RunStage::kPhase2Done);
    }
  }

  // ---- Phase 3: border collapsing over the ambiguous region
  // (Algorithm 4.3). The ambiguous set is probed in bisection order of
  // lattice levels — the halfway layer has the highest collapsing power —
  // batched by the memory budget; every probe scan is followed by Apriori
  // closure over the remaining ambiguous patterns.
  reg.GetGauge("phase3.budget.max_counters")
      .Set(static_cast<double>(options_.max_counters_per_scan));
  obs::TraceSpan phase3_span("phase3.border_collapse", "phase3");
  NMINE_PROFILE_SCOPE("phase3.border_collapse");
  runtime::PublishPhase("phase3");
  phase3_span.Arg("ambiguous_initial", ambiguous.size());
  while (!ambiguous.empty()) {
    // Flush-and-stop: a cancel/deadline observed between probe scans
    // persists the exact collapsed state (consumed scans only) before the
    // typed failure, so a rerun resumes bit-identically.
    Status rs = runtime::CheckRun(run);
    if (!rs.ok()) {
      if (!ckpt_path.empty()) write_checkpoint(runtime::RunStage::kPhase3Progress);
      return fail(rs);
    }

    // One full-database probe scan per iteration: spans and counters below
    // account the probe batch and the collapse it produces.
    obs::TraceSpan scan_span("phase3.scan", "phase3");
    NMINE_PROFILE_SCOPE("phase3.scan");
    const size_t ambiguous_before = ambiguous.size();
    // Group the remaining ambiguous patterns by level.
    std::map<size_t, std::vector<const Pattern*>> by_level;
    for (const Pattern& p : ambiguous) {
      by_level[p.NumSymbols()].push_back(&p);
    }
    const size_t lo = by_level.begin()->first;
    const size_t hi = by_level.rbegin()->first;

    // Degradation ladder step 1: the probe batch is capped by the memory
    // budget below max_counters_per_scan (more scans, each probing fewer
    // patterns — results stay exact).
    size_t batch_cap = options_.max_counters_per_scan;
    if (!governor.unlimited()) {
      batch_cap =
          governor.AdmitBatch(batch_cap, CounterBytes(ambiguous.front()));
      if (batch_cap == 0) {
        return fail(Status::ResourceExhausted(
            "memory budget cannot hold a single probe counter"));
      }
    }

    // Fill the probe set in bisection order until memory is full.
    std::vector<Pattern> probe;
    PatternSet probe_set;
    for (size_t level : BisectionOrder(lo, hi)) {
      auto it = by_level.find(level);
      if (it == by_level.end()) continue;
      for (const Pattern* p : it->second) {
        if (probe.size() >= batch_cap) break;
        probe.push_back(*p);
        probe_set.Insert(*p);
      }
      if (probe.size() >= batch_cap) break;
    }
    if (probe.empty()) {
      // Degenerate memory budget; probe at least one pattern so the loop
      // always makes progress.
      probe.push_back(ambiguous.front());
      probe_set.Insert(ambiguous.front());
    }

    // One scan of the full database for the whole probe set. A transient
    // scan fault is retried at the miner level (on top of any retrying the
    // database itself does): only this unresolved probe batch is
    // re-counted — resolved patterns are never probed again.
    std::vector<double> values;
    Status scan_status = Status::Ok();
    for (size_t attempt = 0; attempt <= options_.phase3_scan_retries;
         ++attempt) {
      if (attempt > 0) {
        reg.GetCounter("phase3.scan_retries").Increment();
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kScanRetry, "phase3.scan",
            static_cast<int64_t>(attempt),
            static_cast<int64_t>(probe.size()));
        NMINE_LOG(kWarn, "phase3")
            .Msg("retrying failed probe scan")
            .Num("attempt", attempt)
            .Num("probe_size", probe.size())
            .Str("status", scan_status.ToString());
      }
      if (options_.phase3_count_override) {
        // Distributed counting: the hook scans out of process. Charge it
        // like a database scan (the db's own counter does not move) so
        // checkpointed scan totals match an all-local run.
        ++result.scans;
        scan_status = options_.phase3_count_override(probe, &values);
      } else {
        scan_status = metric_ == Metric::kMatch
                          ? TryCountMatches(db, c, probe, &values, exec)
                          : TryCountSupports(db, probe, &values, exec);
      }
      if (scan_status.ok() || !scan_status.IsTransient()) break;
    }
    if (!scan_status.ok()) {
      // The checkpoint (when configured) still holds the last good state —
      // deliberately NOT rewritten here: an aborted scan is charged to
      // this failed run but never checkpointed, so a rerun repeats it and
      // total charged scans match an uninterrupted run.
      return fail(scan_status);
    }

    std::vector<Pattern> probed_frequent;
    std::vector<Pattern> probed_infrequent;
    for (size_t i = 0; i < probe.size(); ++i) {
      if (values[i] >= options_.min_threshold) {
        result.frequent.Insert(probe[i]);
        result.values[probe[i]] = values[i];  // exact value
        probed_frequent.push_back(probe[i]);
      } else {
        probed_infrequent.push_back(probe[i]);
      }
    }

    // Apriori closure: subpatterns of a frequent probe are frequent;
    // superpatterns of an infrequent probe are infrequent.
    size_t closure_frequent = 0;
    size_t closure_infrequent = 0;
    std::vector<Pattern> remaining;
    remaining.reserve(ambiguous.size());
    for (const Pattern& p : ambiguous) {
      if (probe_set.Contains(p)) continue;  // resolved directly
      bool resolved = false;
      for (const Pattern& f : probed_frequent) {
        if (p.IsSubpatternOf(f)) {
          result.frequent.Insert(p);
          result.values[p] = sample_values[p];  // sample estimate
          resolved = true;
          ++closure_frequent;
          break;
        }
      }
      if (!resolved) {
        for (const Pattern& q : probed_infrequent) {
          if (q.IsSubpatternOf(p)) {
            resolved = true;  // infrequent; drop
            ++closure_infrequent;
            break;
          }
        }
      }
      if (!resolved) remaining.push_back(p);
    }
    ambiguous = std::move(remaining);

    // Persist the collapsed state: a fault on the NEXT scan resumes here.
    if (!ckpt_path.empty() && !ambiguous.empty()) {
      write_checkpoint(runtime::RunStage::kPhase3Progress);
    }

    reg.GetCounter("phase3.scans").Increment();
    reg.GetCounter("phase3.probed").Add(static_cast<int64_t>(probe.size()));
    reg.GetCounter("phase3.probe_frequent")
        .Add(static_cast<int64_t>(probed_frequent.size()));
    reg.GetCounter("phase3.probe_infrequent")
        .Add(static_cast<int64_t>(probed_infrequent.size()));
    reg.GetCounter("phase3.closure_frequent")
        .Add(static_cast<int64_t>(closure_frequent));
    reg.GetCounter("phase3.closure_infrequent")
        .Add(static_cast<int64_t>(closure_infrequent));
    reg.GetHistogram("phase3.budget_utilization",
                     {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        .Observe(options_.max_counters_per_scan > 0
                     ? static_cast<double>(probe.size()) /
                           static_cast<double>(options_.max_counters_per_scan)
                     : 1.0);
    reg.GetHistogram("phase3.collapse_ratio",
                     {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9})
        .Observe(static_cast<double>(ambiguous.size()) /
                 static_cast<double>(ambiguous_before));
    scan_span.Arg("probed", probe.size())
        .Arg("probe_frequent", probed_frequent.size())
        .Arg("probe_infrequent", probed_infrequent.size())
        .Arg("closure_frequent", closure_frequent)
        .Arg("closure_infrequent", closure_infrequent)
        .Arg("ambiguous_before", ambiguous_before)
        .Arg("ambiguous_after", ambiguous.size());
    NMINE_LOG(kInfo, "phase3")
        .Msg("probe scan collapsed ambiguous region")
        .Num("probed", probe.size())
        .Num("budget", options_.max_counters_per_scan)
        .Num("ambiguous_before", ambiguous_before)
        .Num("ambiguous_after", ambiguous.size());
    runtime::PublishProgress("phase3.collapse",
                             static_cast<int64_t>(ambiguous_before),
                             static_cast<int64_t>(ambiguous.size()));
  }

  BuildBorder(&result);
  if (!ckpt_path.empty()) runtime::RemoveRunCheckpoint(ckpt_path);
  finish(&result);
  return result;
}

}  // namespace nmine
