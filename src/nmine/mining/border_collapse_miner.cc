#include "nmine/mining/border_collapse_miner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "nmine/lattice/halfway.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/phase3_checkpoint.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"

namespace nmine {
namespace {

double PatternSpread(const Pattern& p,
                     const std::vector<double>& symbol_match) {
  double r = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId s = p[i];
    if (IsWildcard(s)) continue;
    double sm = symbol_match[static_cast<size_t>(s)];
    if (sm < r) r = sm;
  }
  return r;
}

}  // namespace

SampleClassification ClassifySamplePatterns(
    const std::vector<SequenceRecord>& records, const CompatibilityMatrix& c,
    const std::vector<double>& symbol_match, Metric metric,
    const MinerOptions& options) {
  obs::TraceSpan phase2_span("phase2.sample_mining", "phase2");
  NMINE_PROFILE_SCOPE("phase2.sample_mining");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  SampleClassification out;
  const size_t m = c.size();
  const size_t n = records.size();
  const double unit_eps =
      n > 0 ? ChernoffEpsilon(1.0, options.delta, n) : 0.0;

  std::vector<SymbolId> all_symbols(m);
  for (size_t i = 0; i < m; ++i) all_symbols[i] = static_cast<SymbolId>(i);

  // keep = frequent-or-ambiguous patterns, the Apriori-viable set for
  // candidate generation (Section 4.2: "P may be considered a candidate
  // pattern iff every sub-pattern of P is either frequent or ambiguous").
  PatternSet keep;
  std::vector<Pattern> keep_level;
  std::vector<SymbolId> keep_symbols;

  std::vector<Pattern> candidates = Level1Candidates(all_symbols);
  for (size_t level = 1; level <= options.max_level && !candidates.empty();
       ++level) {
    obs::TraceSpan level_span("phase2.level", "phase2");
    level_span.Arg("level", level).Arg("candidates", candidates.size());
    // Phase 2 runs on the in-memory sample, so no scans are charged; the
    // exec policy still shards the per-level counting across workers.
    const exec::ExecPolicy exec = ExecPolicyFor(options);
    std::vector<double> values =
        metric == Metric::kMatch
            ? CountMatchesInRecords(records, c, candidates, exec)
            : CountSupportsInRecords(records, candidates, exec);
    LevelStats stats;
    stats.level = level;
    stats.num_candidates = candidates.size();
    keep_level.clear();
    size_t level_ambiguous = 0;
    double eps_sum = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Pattern& p = candidates[i];
      double spread = options.use_restricted_spread
                          ? PatternSpread(p, symbol_match)
                          : 1.0;
      double eps =
          n > 0 ? ChernoffEpsilon(spread, options.delta, n) : 0.0;
      eps_sum += eps;
      PatternLabel label =
          ClassifyMatch(values[i], options.min_threshold, eps);
      PatternLabel unit_label =
          ClassifyMatch(values[i], options.min_threshold, unit_eps);
      if (unit_label == PatternLabel::kAmbiguous) {
        ++out.ambiguous_with_unit_spread;
      }
      if (label == PatternLabel::kInfrequent) continue;
      out.sample_values[p] = values[i];
      keep.Insert(p);
      keep_level.push_back(p);
      if (level == 1) keep_symbols.push_back(p[0]);
      if (label == PatternLabel::kFrequent) {
        out.frequent.push_back(p);
        out.fqt.Insert(p);
        ++stats.num_frequent;
      } else {
        out.ambiguous.push_back(p);
        out.infqt.Insert(p);
        ++level_ambiguous;
      }
    }
    out.level_stats.push_back(stats);

    // Per-level accounting: the frequent/ambiguous/infrequent split and
    // the mean Chernoff band width (the quantity that drives the split).
    const size_t level_infrequent =
        stats.num_candidates - stats.num_frequent - level_ambiguous;
    const double mean_band =
        stats.num_candidates > 0
            ? eps_sum / static_cast<double>(stats.num_candidates)
            : 0.0;
    reg.GetCounter("phase2.levels").Increment();
    reg.GetCounter("phase2.candidates")
        .Add(static_cast<int64_t>(stats.num_candidates));
    reg.GetCounter("phase2.frequent")
        .Add(static_cast<int64_t>(stats.num_frequent));
    reg.GetCounter("phase2.ambiguous")
        .Add(static_cast<int64_t>(level_ambiguous));
    reg.GetCounter("phase2.infrequent")
        .Add(static_cast<int64_t>(level_infrequent));
    reg.GetHistogram("phase2.band_width",
                     {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5})
        .Observe(mean_band);
    level_span.Arg("frequent", stats.num_frequent)
        .Arg("ambiguous", level_ambiguous)
        .Arg("infrequent", level_infrequent)
        .Arg("mean_band_width", mean_band);
    NMINE_LOG(kDebug, "phase2")
        .Msg("sample level classified")
        .Num("level", level)
        .Num("candidates", stats.num_candidates)
        .Num("frequent", stats.num_frequent)
        .Num("ambiguous", level_ambiguous)
        .Num("infrequent", level_infrequent)
        .Num("mean_band_width", mean_band);

    if (keep_level.empty()) break;
    candidates = NextLevelCandidates(
        keep_level, keep_symbols, options.space,
        [&keep](const Pattern& sub) { return keep.Contains(sub); },
        options.max_candidates_per_level);
    if (candidates.size() >= options.max_candidates_per_level) {
      out.truncated = true;
      reg.GetCounter("phase2.truncations").Increment();
      NMINE_LOG(kWarn, "phase2")
          .Msg("candidate guardrail fired")
          .Num("level", level + 1)
          .Num("max_candidates_per_level",
               options.max_candidates_per_level);
    }
  }
  return out;
}

MiningResult BorderCollapseMiner::Mine(const SequenceDatabase& db,
                                       const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.border_collapse", "mining");
  NMINE_PROFILE_SCOPE("mine.border_collapse");
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  auto finish = [&](MiningResult* r) {
    r->scans = db.scan_count() - scans_before + r->scans;
    r->seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    EmitResultMetrics(*r, "collapse");
  };
  auto fail = [&](Status status) {
    // A partial pattern set would be indistinguishable from a complete
    // one, so failure returns only the status and the cost accounting.
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    finish(&result);
    return result;
  };

  // State the Phase-3 loop runs on: the unresolved ambiguous region and
  // the sample estimates closure-frequent patterns inherit. Filled either
  // by Phases 1-2 or from a checkpoint of an interrupted run.
  std::vector<Pattern> ambiguous;
  PatternMap<double> sample_values;
  bool resumed = false;
  const std::string& ckpt_path = options_.phase3_checkpoint_path;

  if (!ckpt_path.empty()) {
    Phase3Checkpoint expected;
    expected.metric = metric_;
    expected.min_threshold = options_.min_threshold;
    expected.num_sequences = db.NumSequences();
    expected.total_symbols = db.TotalSymbols();
    Phase3Checkpoint cp;
    Status s = LoadPhase3Checkpoint(ckpt_path, expected, &cp);
    if (s.ok()) {
      resumed = true;
      reg.GetCounter("phase3.resumes").Increment();
      NMINE_LOG(kInfo, "phase3")
          .Msg("resuming border collapse from checkpoint")
          .Str("path", ckpt_path)
          .Num("resolved", cp.resolved_frequent.size())
          .Num("unresolved", cp.unresolved.size())
          .Num("scans_completed", cp.scans_completed);
      for (const auto& [p, v] : cp.resolved_frequent) {
        result.frequent.Insert(p);
        result.values[p] = v;
      }
      for (const auto& [p, v] : cp.unresolved) {
        ambiguous.push_back(p);
        sample_values[p] = v;
      }
      result.symbol_match = cp.symbol_match;
      result.ambiguous_after_sample = cp.ambiguous_after_sample;
      result.ambiguous_with_unit_spread = cp.ambiguous_with_unit_spread;
      result.accepted_from_sample = cp.accepted_from_sample;
      result.truncated = cp.truncated;
      result.scans = cp.scans_completed;  // finish() adds this run's scans
    } else if (s.code() != StatusCode::kNotFound) {
      NMINE_LOG(kWarn, "phase3")
          .Msg("ignoring unusable checkpoint; starting fresh")
          .Str("path", ckpt_path)
          .Str("status", s.ToString());
    }
  }

  const exec::ExecPolicy exec = ExecPolicyFor(options_);
  if (!resumed) {
    Rng rng(options_.seed);

    // ---- Phase 1: symbol matches + sample, one scan (Algorithm 4.1).
    SymbolScanResult phase1 =
        metric_ == Metric::kMatch
            ? ScanSymbolsAndSample(db, c, options_.sample_size, &rng, exec)
            : ScanSymbolSupports(db, c.size(), options_.sample_size, &rng,
                                 exec);
    if (!phase1.status.ok()) return fail(phase1.status);
    result.symbol_match = phase1.symbol_match;

    // ---- Phase 2: classify patterns on the in-memory sample.
    SampleClassification cls = ClassifySamplePatterns(
        phase1.sample.records(), c, phase1.symbol_match, metric_, options_);
    result.level_stats = cls.level_stats;
    result.truncated = cls.truncated;
    result.ambiguous_after_sample = cls.ambiguous.size();
    result.ambiguous_with_unit_spread = cls.ambiguous_with_unit_spread;
    result.accepted_from_sample = cls.frequent.size();

    // Sample-frequent patterns are accepted with probability 1 - delta
    // (Claim 4.1); they carry their sample estimates.
    for (const Pattern& p : cls.frequent) {
      result.frequent.Insert(p);
      result.values[p] = cls.sample_values[p];
    }
    ambiguous = std::move(cls.ambiguous);
    sample_values = std::move(cls.sample_values);
  }

  auto write_checkpoint = [&] {
    Phase3Checkpoint cp;
    cp.metric = metric_;
    cp.min_threshold = options_.min_threshold;
    cp.num_sequences = db.NumSequences();
    cp.total_symbols = db.TotalSymbols();
    cp.scans_completed = db.scan_count() - scans_before + result.scans;
    cp.ambiguous_after_sample = result.ambiguous_after_sample;
    cp.ambiguous_with_unit_spread = result.ambiguous_with_unit_spread;
    cp.accepted_from_sample = result.accepted_from_sample;
    cp.truncated = result.truncated;
    cp.symbol_match = result.symbol_match;
    for (const Pattern& p : result.frequent.ToSortedVector()) {
      cp.resolved_frequent.emplace_back(p, result.values[p]);
    }
    for (const Pattern& p : ambiguous) {
      cp.unresolved.emplace_back(p, sample_values[p]);
    }
    Status s = WritePhase3Checkpoint(ckpt_path, cp);
    if (s.ok()) {
      reg.GetCounter("phase3.checkpoints").Increment();
    } else {
      NMINE_LOG(kWarn, "phase3")
          .Msg("checkpoint write failed; continuing without")
          .Str("path", ckpt_path)
          .Str("status", s.ToString());
    }
  };

  // Checkpoint the Phase-1/2 output before the first probe scan, so even a
  // first-scan fault resumes without repeating the sample phase.
  if (!ckpt_path.empty() && !resumed && !ambiguous.empty()) {
    write_checkpoint();
  }

  // ---- Phase 3: border collapsing over the ambiguous region
  // (Algorithm 4.3). The ambiguous set is probed in bisection order of
  // lattice levels — the halfway layer has the highest collapsing power —
  // batched by the memory budget; every probe scan is followed by Apriori
  // closure over the remaining ambiguous patterns.
  reg.GetGauge("phase3.budget.max_counters")
      .Set(static_cast<double>(options_.max_counters_per_scan));
  obs::TraceSpan phase3_span("phase3.border_collapse", "phase3");
  NMINE_PROFILE_SCOPE("phase3.border_collapse");
  phase3_span.Arg("ambiguous_initial", ambiguous.size());
  while (!ambiguous.empty()) {
    // One full-database probe scan per iteration: spans and counters below
    // account the probe batch and the collapse it produces.
    obs::TraceSpan scan_span("phase3.scan", "phase3");
    NMINE_PROFILE_SCOPE("phase3.scan");
    const size_t ambiguous_before = ambiguous.size();
    // Group the remaining ambiguous patterns by level.
    std::map<size_t, std::vector<const Pattern*>> by_level;
    for (const Pattern& p : ambiguous) {
      by_level[p.NumSymbols()].push_back(&p);
    }
    const size_t lo = by_level.begin()->first;
    const size_t hi = by_level.rbegin()->first;

    // Fill the probe set in bisection order until memory is full.
    std::vector<Pattern> probe;
    PatternSet probe_set;
    for (size_t level : BisectionOrder(lo, hi)) {
      auto it = by_level.find(level);
      if (it == by_level.end()) continue;
      for (const Pattern* p : it->second) {
        if (probe.size() >= options_.max_counters_per_scan) break;
        probe.push_back(*p);
        probe_set.Insert(*p);
      }
      if (probe.size() >= options_.max_counters_per_scan) break;
    }
    if (probe.empty()) {
      // Degenerate memory budget; probe at least one pattern so the loop
      // always makes progress.
      probe.push_back(ambiguous.front());
      probe_set.Insert(ambiguous.front());
    }

    // One scan of the full database for the whole probe set. A transient
    // scan fault is retried at the miner level (on top of any retrying the
    // database itself does): only this unresolved probe batch is
    // re-counted — resolved patterns are never probed again.
    std::vector<double> values;
    Status scan_status = Status::Ok();
    for (size_t attempt = 0; attempt <= options_.phase3_scan_retries;
         ++attempt) {
      if (attempt > 0) {
        reg.GetCounter("phase3.scan_retries").Increment();
        NMINE_LOG(kWarn, "phase3")
            .Msg("retrying failed probe scan")
            .Num("attempt", attempt)
            .Num("probe_size", probe.size())
            .Str("status", scan_status.ToString());
      }
      scan_status = metric_ == Metric::kMatch
                        ? TryCountMatches(db, c, probe, &values, exec)
                        : TryCountSupports(db, probe, &values, exec);
      if (scan_status.ok() || !scan_status.IsTransient()) break;
    }
    if (!scan_status.ok()) {
      // The checkpoint (when configured) still holds the last good state;
      // a rerun resumes from exactly this probe batch.
      return fail(scan_status);
    }

    std::vector<Pattern> probed_frequent;
    std::vector<Pattern> probed_infrequent;
    for (size_t i = 0; i < probe.size(); ++i) {
      if (values[i] >= options_.min_threshold) {
        result.frequent.Insert(probe[i]);
        result.values[probe[i]] = values[i];  // exact value
        probed_frequent.push_back(probe[i]);
      } else {
        probed_infrequent.push_back(probe[i]);
      }
    }

    // Apriori closure: subpatterns of a frequent probe are frequent;
    // superpatterns of an infrequent probe are infrequent.
    size_t closure_frequent = 0;
    size_t closure_infrequent = 0;
    std::vector<Pattern> remaining;
    remaining.reserve(ambiguous.size());
    for (const Pattern& p : ambiguous) {
      if (probe_set.Contains(p)) continue;  // resolved directly
      bool resolved = false;
      for (const Pattern& f : probed_frequent) {
        if (p.IsSubpatternOf(f)) {
          result.frequent.Insert(p);
          result.values[p] = sample_values[p];  // sample estimate
          resolved = true;
          ++closure_frequent;
          break;
        }
      }
      if (!resolved) {
        for (const Pattern& q : probed_infrequent) {
          if (q.IsSubpatternOf(p)) {
            resolved = true;  // infrequent; drop
            ++closure_infrequent;
            break;
          }
        }
      }
      if (!resolved) remaining.push_back(p);
    }
    ambiguous = std::move(remaining);

    // Persist the collapsed state: a fault on the NEXT scan resumes here.
    if (!ckpt_path.empty() && !ambiguous.empty()) {
      write_checkpoint();
    }

    reg.GetCounter("phase3.scans").Increment();
    reg.GetCounter("phase3.probed").Add(static_cast<int64_t>(probe.size()));
    reg.GetCounter("phase3.probe_frequent")
        .Add(static_cast<int64_t>(probed_frequent.size()));
    reg.GetCounter("phase3.probe_infrequent")
        .Add(static_cast<int64_t>(probed_infrequent.size()));
    reg.GetCounter("phase3.closure_frequent")
        .Add(static_cast<int64_t>(closure_frequent));
    reg.GetCounter("phase3.closure_infrequent")
        .Add(static_cast<int64_t>(closure_infrequent));
    reg.GetHistogram("phase3.budget_utilization",
                     {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        .Observe(options_.max_counters_per_scan > 0
                     ? static_cast<double>(probe.size()) /
                           static_cast<double>(options_.max_counters_per_scan)
                     : 1.0);
    reg.GetHistogram("phase3.collapse_ratio",
                     {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9})
        .Observe(static_cast<double>(ambiguous.size()) /
                 static_cast<double>(ambiguous_before));
    scan_span.Arg("probed", probe.size())
        .Arg("probe_frequent", probed_frequent.size())
        .Arg("probe_infrequent", probed_infrequent.size())
        .Arg("closure_frequent", closure_frequent)
        .Arg("closure_infrequent", closure_infrequent)
        .Arg("ambiguous_before", ambiguous_before)
        .Arg("ambiguous_after", ambiguous.size());
    NMINE_LOG(kInfo, "phase3")
        .Msg("probe scan collapsed ambiguous region")
        .Num("probed", probe.size())
        .Num("budget", options_.max_counters_per_scan)
        .Num("ambiguous_before", ambiguous_before)
        .Num("ambiguous_after", ambiguous.size());
  }

  BuildBorder(&result);
  if (!ckpt_path.empty()) RemovePhase3Checkpoint(ckpt_path);
  finish(&result);
  return result;
}

}  // namespace nmine
