#ifndef NMINE_MINING_PHASE3_CHECKPOINT_H_
#define NMINE_MINING_PHASE3_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nmine/core/metric.h"
#include "nmine/core/pattern.h"
#include "nmine/core/status.h"

namespace nmine {

/// Border-collapsing probe state persisted between Phase-3 scans, so a run
/// killed by a scan fault resumes from the unresolved batch instead of
/// redoing Phases 1-3 from scratch (each probe scan is a full pass over
/// the disk-resident database — the dominant cost the paper optimizes).
///
/// This is the kPhase3Progress stage of the whole-run checkpoint format
/// (runtime/run_checkpoint.h), kept as a thin adapter for callers that
/// only need Phase-3 fault tolerance.
///
/// The guard fields tie a checkpoint to one (database, metric, threshold)
/// configuration; Load refuses mismatches so stale state can never leak
/// into a different mining run.
struct Phase3Checkpoint {
  // --- Guard: must match the resuming run exactly. ---
  Metric metric = Metric::kMatch;
  double min_threshold = 0.0;
  uint64_t num_sequences = 0;
  uint64_t total_symbols = 0;

  /// Probe scans already completed (restored into MiningResult::scans so
  /// cost accounting spans the interrupted and resumed runs).
  int64_t scans_completed = 0;

  // --- Diagnostics carried across the resume (Phase 1/2 outputs). ---
  uint64_t ambiguous_after_sample = 0;
  uint64_t ambiguous_with_unit_spread = 0;
  uint64_t accepted_from_sample = 0;
  bool truncated = false;
  std::vector<double> symbol_match;

  /// Patterns already known frequent, with their values (exact for probed
  /// patterns, sample estimates for sample-accepted ones).
  std::vector<std::pair<Pattern, double>> resolved_frequent;

  /// Still-ambiguous patterns with their sample estimates (the estimate is
  /// assigned when Apriori closure later accepts the pattern un-probed).
  std::vector<std::pair<Pattern, double>> unresolved;
};

/// Writes `cp` to `path` atomically (temp file + rename), so a crash while
/// checkpointing never destroys the previous good checkpoint.
Status WritePhase3Checkpoint(const std::string& path,
                             const Phase3Checkpoint& cp);

/// Loads a checkpoint. kNotFound when no file exists (fresh run),
/// kDataLoss on a malformed file, kFailedPrecondition when the guard
/// fields disagree with `expected` (the caller's configuration).
Status LoadPhase3Checkpoint(const std::string& path,
                            const Phase3Checkpoint& expected,
                            Phase3Checkpoint* cp);

/// Removes the checkpoint file if present (called on successful
/// completion). Best-effort; missing files are fine.
void RemovePhase3Checkpoint(const std::string& path);

}  // namespace nmine

#endif  // NMINE_MINING_PHASE3_CHECKPOINT_H_
