#include "nmine/mining/max_miner.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "nmine/lattice/pattern_counter.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/mining/governed_count.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace {

constexpr size_t kMaxJumpsPerScan = 512;

/// Prefix of a contiguous pattern (all but the last symbol), or an empty
/// pattern for 1-patterns.
Pattern ContiguousPrefix(const Pattern& p) {
  if (p.length() <= 1) return Pattern();
  std::vector<SymbolId> body(p.body().begin(), p.body().end() - 1);
  return Pattern(std::move(body));
}

/// Suffix of a contiguous pattern (all but the first symbol).
Pattern ContiguousSuffix(const Pattern& p) {
  if (p.length() <= 1) return Pattern();
  std::vector<SymbolId> body(p.body().begin() + 1, p.body().end());
  return Pattern(std::move(body));
}

/// Builds look-ahead "jump" candidates by overlap-joining the frequent
/// level-k patterns into maximal chains, following the highest-value
/// successor at each step (the sequential analogue of Max-Miner's
/// head-union-tail counting).
std::vector<Pattern> BuildJumps(const std::vector<Pattern>& frontier,
                                const PatternMap<double>& values,
                                size_t max_span, size_t min_symbols) {
  std::vector<Pattern> jumps;
  if (frontier.empty() || frontier.front().length() < 2) return jumps;

  PatternMap<std::vector<size_t>> by_prefix;
  for (size_t i = 0; i < frontier.size(); ++i) {
    by_prefix[ContiguousPrefix(frontier[i])].push_back(i);
  }
  auto value_of = [&values](const Pattern& p) {
    auto it = values.find(p);
    return it == values.end() ? 1.0 : it->second;
  };

  PatternSet seen;
  for (const Pattern& start : frontier) {
    if (jumps.size() >= kMaxJumpsPerScan) break;
    std::vector<SymbolId> chain = start.body();
    Pattern tail = start;
    while (chain.size() < max_span) {
      auto it = by_prefix.find(ContiguousSuffix(tail));
      if (it == by_prefix.end()) break;
      // Greedy: extend with the highest-value overlapping pattern.
      const Pattern* best = nullptr;
      double best_value = -1.0;
      for (size_t idx : it->second) {
        double v = value_of(frontier[idx]);
        if (v > best_value) {
          best_value = v;
          best = &frontier[idx];
        }
      }
      if (best == nullptr) break;
      chain.push_back((*best)[best->length() - 1]);
      tail = *best;
    }
    if (chain.size() >= min_symbols) {
      Pattern jump(std::move(chain));
      if (seen.Insert(jump)) {
        jumps.push_back(std::move(jump));
      }
    }
  }
  return jumps;
}

}  // namespace

MiningResult MaxMiner::Mine(const SequenceDatabase& db,
                            const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.maxminer", "mining");
  NMINE_PROFILE_SCOPE("mine.maxminer");
  runtime::PublishPhase("mine.maxminer");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  const size_t m = c.size();
  const bool contiguous = options_.space.max_gap == 0;

  const exec::ExecPolicy exec = ExecPolicyFor(options_);
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);
  const BatchCountFn inner = [&](const std::vector<Pattern>& patterns,
                                 std::vector<double>* values) {
    return metric_ == Metric::kMatch
               ? TryCountMatches(db, c, patterns, values, exec)
               : TryCountSupports(db, patterns, values, exec);
  };
  // GovernedCount preserves input order, so the values of a split batch
  // still line up with to_count followed by jumps. Under a binding budget
  // a level costs several scans instead of one; the run control stops the
  // loop between scans.
  auto count = [&](const std::vector<Pattern>& patterns,
                   std::vector<double>* values) {
    return GovernedCount(patterns, &governor, options_.run_control, inner,
                         values);
  };
  auto fail = [&](Status status) {
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    result.scans = db.scan_count() - scans_before;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    result.degradation_steps = governor.degradation_steps();
    EmitResultMetrics(result, "maxminer");
    return result;
  };

  // Patterns certified frequent by a counted look-ahead jump: anything they
  // cover is frequent by Apriori and need not be counted.
  Border certified;

  std::vector<SymbolId> all_symbols(m);
  for (size_t i = 0; i < m; ++i) all_symbols[i] = static_cast<SymbolId>(i);

  std::vector<Pattern> candidates = Level1Candidates(all_symbols);
  std::vector<SymbolId> frequent_symbols;
  std::vector<Pattern> frontier;
  PatternMap<double> frontier_values;

  for (size_t level = 1;
       level <= options_.max_level && !candidates.empty(); ++level) {
    obs::TraceSpan level_span("maxminer.level", "maxminer");
    NMINE_PROFILE_SCOPE("maxminer.level");
    level_span.Arg("level", level).Arg("candidates", candidates.size());
    // Split candidates into covered (frequent via a certified jump) and
    // those that must be counted.
    std::vector<Pattern> to_count;
    std::vector<Pattern> covered;
    for (Pattern& cand : candidates) {
      if (certified.Covers(cand)) {
        covered.push_back(std::move(cand));
      } else {
        to_count.push_back(std::move(cand));
      }
    }

    // Look-ahead jumps piggyback on the same scan.
    std::vector<Pattern> jumps;
    if (contiguous && level >= 2) {
      jumps = BuildJumps(frontier, frontier_values, options_.space.max_span,
                         /*min_symbols=*/level + 2);
      // Jumps already certified are pointless to recount.
      jumps.erase(std::remove_if(jumps.begin(), jumps.end(),
                                 [&certified](const Pattern& j) {
                                   return certified.Covers(j);
                                 }),
                  jumps.end());
    }

    LevelStats stats;
    stats.level = level;
    stats.num_candidates = to_count.size() + covered.size();

    std::vector<Pattern> batch = to_count;
    batch.insert(batch.end(), jumps.begin(), jumps.end());
    std::vector<double> values;
    if (!batch.empty()) {
      // One scan serves candidates and jumps.
      Status count_status = count(batch, &values);
      if (!count_status.ok()) return fail(std::move(count_status));
    }

    frontier.clear();
    frontier_values.clear();
    for (size_t i = 0; i < to_count.size(); ++i) {
      if (values[i] >= options_.min_threshold) {
        frontier.push_back(to_count[i]);
        frontier_values[to_count[i]] = values[i];
        result.frequent.Insert(to_count[i]);
        result.values[to_count[i]] = values[i];
        if (level == 1) frequent_symbols.push_back(to_count[i][0]);
      }
    }
    for (Pattern& p : covered) {
      result.frequent.Insert(p);
      frontier.push_back(std::move(p));  // certified frequent, no value
    }
    size_t jumps_certified = 0;
    for (size_t j = 0; j < jumps.size(); ++j) {
      double v = values[to_count.size() + j];
      if (v >= options_.min_threshold) {
        certified.Insert(jumps[j]);
        result.frequent.Insert(jumps[j]);
        result.values[jumps[j]] = v;
        ++jumps_certified;
      }
    }
    stats.num_frequent = frontier.size();
    result.level_stats.push_back(stats);

    reg.GetCounter("maxminer.counted")
        .Add(static_cast<int64_t>(to_count.size()));
    reg.GetCounter("maxminer.covered")
        .Add(static_cast<int64_t>(covered.size()));
    reg.GetCounter("maxminer.jumps").Add(static_cast<int64_t>(jumps.size()));
    reg.GetCounter("maxminer.jumps_certified")
        .Add(static_cast<int64_t>(jumps_certified));
    level_span.Arg("counted", to_count.size())
        .Arg("covered", covered.size())
        .Arg("jumps", jumps.size())
        .Arg("jumps_certified", jumps_certified)
        .Arg("frequent", stats.num_frequent);
    NMINE_LOG(kDebug, "maxminer")
        .Msg("level counted")
        .Num("level", level)
        .Num("candidates", stats.num_candidates)
        .Num("covered", covered.size())
        .Num("jumps_certified", jumps_certified)
        .Num("frequent", stats.num_frequent);
    runtime::PublishProgress("maxminer.level", static_cast<int64_t>(level),
                             static_cast<int64_t>(stats.num_frequent));

    if (frontier.empty()) break;
    candidates = NextLevelCandidates(
        frontier, frequent_symbols, options_.space,
        [&result](const Pattern& sub) {
          return result.frequent.Contains(sub);
        },
        options_.max_candidates_per_level);
    if (candidates.size() >= options_.max_candidates_per_level) {
      result.truncated = true;
    }
  }

  // Every pattern covered by a certified jump is frequent; they are already
  // in `result.frequent` because covered candidates are enumerated level by
  // level. The border is therefore complete.
  BuildBorder(&result);
  result.scans = db.scan_count() - scans_before;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.degradation_steps = governor.degradation_steps();
  EmitResultMetrics(result, "maxminer");
  return result;
}

}  // namespace nmine
