#include "nmine/mining/symbol_scan.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "nmine/db/reservoir_sampler.h"
#include "nmine/exec/sharded_reduce.h"
#include "nmine/obs/logger.h"
#include "nmine/runtime/run_control.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"

namespace nmine {
namespace {

/// Phase-1 accounting shared by both scan flavours: one scan, n_seq
/// sequences offered to the sampler, `selected` kept.
void RecordPhase1(const char* name, size_t n_seq, size_t sample_target,
                  size_t selected) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("phase1.scans").Increment();
  reg.GetCounter("phase1.sequences").Add(static_cast<int64_t>(n_seq));
  reg.GetGauge("phase1.sample.target")
      .Set(static_cast<double>(sample_target));
  reg.GetGauge("phase1.sample.selected").Set(static_cast<double>(selected));
  NMINE_LOG(kDebug, "phase1")
      .Msg(name)
      .Num("sequences", n_seq)
      .Num("sample_target", sample_target)
      .Num("sample_selected", selected);
}

}  // namespace

SymbolScanResult ScanSymbolsAndSample(const SequenceDatabase& db,
                                      const CompatibilityMatrix& c,
                                      size_t sample_size, Rng* rng,
                                      const exec::ExecPolicy& exec) {
  obs::TraceSpan span("phase1.symbol_scan", "phase1");
  NMINE_PROFILE_SCOPE("phase1.symbol_scan");
  obs::Profiler::Section* offer_section =
      obs::ResolveSection("phase1.sample.offer");
  const size_t m = c.size();
  const size_t n_seq = db.NumSequences();
  SymbolScanResult result;
  result.symbol_match.assign(m, 0.0);
  // Refuse to start (and charge) the Phase-1 scan for a stopped run.
  result.status = runtime::CheckRun(exec.run);
  if (!result.status.ok()) {
    result.symbol_match.clear();
    return result;
  }

  // Snapshotting the generator lets a retried scan attempt redraw the
  // exact same sample, so a run that recovers from a transient fault is
  // bit-identical to a fault-free run.
  const Rng rng_snapshot = *rng;
  std::optional<SequentialSampler> sampler;
  sampler.emplace(sample_size, n_seq, rng);

  // Per-symbol accumulation is sharded: each shard kernel owns its
  // epoch-stamped scratch (avoids O(m) clearing per sequence) and folds
  // max_match / n into an m-sized partial merged in shard order. The
  // sampler is NOT sharded — it consumes RNG draws sequentially, so it
  // stays on the scanning thread in delivery order and the sample is the
  // same for every thread count.
  struct MatchScratch {
    explicit MatchScratch(size_t m)
        : max_match(m, 0.0), max_match_epoch(m, 0), seen_epoch(m, 0) {}
    std::vector<double> max_match;
    std::vector<uint64_t> max_match_epoch;
    std::vector<uint64_t> seen_epoch;  // distinct-symbol flags
    uint64_t epoch = 0;
  };
  exec::ShardedScanReducer reducer(m, exec, [&c, m, n_seq]() -> exec::RecordFn {
    auto st = std::make_shared<MatchScratch>(m);
    return [&c, m, n_seq, st](const SequenceRecord& record,
                              std::vector<double>* partial) {
      uint64_t epoch = ++st->epoch;
      for (SymbolId observed : record.symbols) {
        size_t oi = static_cast<size_t>(observed);
        if (st->seen_epoch[oi] == epoch) continue;  // first occurrence only
        st->seen_epoch[oi] = epoch;
        for (const CompatibilityMatrix::Entry& e : c.ColumnNonZeros(observed)) {
          size_t ti = static_cast<size_t>(e.symbol);
          if (st->max_match_epoch[ti] != epoch) {
            st->max_match_epoch[ti] = epoch;
            st->max_match[ti] = e.value;
          } else if (e.value > st->max_match[ti]) {
            st->max_match[ti] = e.value;
          }
        }
      }
      for (size_t d = 0; d < m; ++d) {
        if (st->max_match_epoch[d] == epoch) {
          (*partial)[d] += st->max_match[d] / static_cast<double>(n_seq);
        }
      }
    };
  });

  result.status = db.Scan(
      [&](const SequenceRecord& record) {
        reducer.Consume(record);
        if (sample_size > 0) {
          obs::SectionTimer timer(offer_section);
          sampler->Offer(record);
        }
      },
      /*restart=*/[&] {
        reducer.Restart();
        *rng = rng_snapshot;
        sampler.emplace(sample_size, n_seq, rng);
      });
  // A run stopped mid-scan skipped reducer work: the accumulation is
  // garbage, so surface the typed stop status (the scan stays charged).
  if (result.status.ok()) result.status = runtime::CheckRun(exec.run);
  if (!result.status.ok()) {
    result.symbol_match.clear();
    result.sample = InMemorySequenceDatabase();
    return result;
  }
  result.symbol_match = reducer.Finish();

  RecordPhase1("symbol match scan", n_seq, sample_size,
               sampler->sample().size());
  span.Arg("sequences", n_seq).Arg("sample", sampler->sample().size());
  result.sample = sampler->TakeDatabase();
  return result;
}

SymbolScanResult ScanSymbolSupports(const SequenceDatabase& db, size_t m,
                                    size_t sample_size, Rng* rng,
                                    const exec::ExecPolicy& exec) {
  obs::TraceSpan span("phase1.symbol_scan", "phase1");
  NMINE_PROFILE_SCOPE("phase1.symbol_scan");
  obs::Profiler::Section* offer_section =
      obs::ResolveSection("phase1.sample.offer");
  const size_t n_seq = db.NumSequences();
  SymbolScanResult result;
  result.symbol_match.assign(m, 0.0);
  result.status = runtime::CheckRun(exec.run);
  if (!result.status.ok()) {
    result.symbol_match.clear();
    return result;
  }

  const Rng rng_snapshot = *rng;
  std::optional<SequentialSampler> sampler;
  sampler.emplace(sample_size, n_seq, rng);

  struct SupportScratch {
    explicit SupportScratch(size_t m) : seen_epoch(m, 0) {}
    std::vector<uint64_t> seen_epoch;
    uint64_t epoch = 0;
  };
  exec::ShardedScanReducer reducer(m, exec, [m, n_seq]() -> exec::RecordFn {
    auto st = std::make_shared<SupportScratch>(m);
    return [n_seq, st](const SequenceRecord& record,
                       std::vector<double>* partial) {
      uint64_t epoch = ++st->epoch;
      for (SymbolId observed : record.symbols) {
        size_t oi = static_cast<size_t>(observed);
        if (st->seen_epoch[oi] == epoch) continue;
        st->seen_epoch[oi] = epoch;
        (*partial)[oi] += 1.0 / static_cast<double>(n_seq);
      }
    };
  });

  result.status = db.Scan(
      [&](const SequenceRecord& record) {
        reducer.Consume(record);
        if (sample_size > 0) {
          obs::SectionTimer timer(offer_section);
          sampler->Offer(record);
        }
      },
      /*restart=*/[&] {
        reducer.Restart();
        *rng = rng_snapshot;
        sampler.emplace(sample_size, n_seq, rng);
      });
  if (result.status.ok()) result.status = runtime::CheckRun(exec.run);
  if (!result.status.ok()) {
    result.symbol_match.clear();
    result.sample = InMemorySequenceDatabase();
    return result;
  }
  result.symbol_match = reducer.Finish();

  RecordPhase1("symbol support scan", n_seq, sample_size,
               sampler->sample().size());
  span.Arg("sequences", n_seq).Arg("sample", sampler->sample().size());
  result.sample = sampler->TakeDatabase();
  return result;
}

}  // namespace nmine
