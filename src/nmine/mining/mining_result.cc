#include "nmine/mining/mining_result.h"

#include <string>

#include "nmine/mining/miner_options.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"

namespace nmine {

void EmitResultMetrics(const MiningResult& result, const char* algorithm) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("mining.runs").Increment();
  if (!result.ok()) {
    reg.GetCounter("mining.failed_runs").Increment();
    NMINE_LOG(kError, "mining")
        .Msg("run failed")
        .Str("algorithm", algorithm)
        .Str("status", result.status.ToString())
        .Num("scans", result.scans);
  }
  reg.GetCounter(std::string("mining.algorithm.") + algorithm + ".runs")
      .Increment();
  reg.GetCounter("mining.scans").Add(result.scans);
  reg.GetCounter("mining.frequent_patterns")
      .Add(static_cast<int64_t>(result.frequent.size()));
  reg.GetCounter("mining.border_patterns")
      .Add(static_cast<int64_t>(result.border.size()));
  if (result.truncated) reg.GetCounter("mining.truncated_runs").Increment();
  for (const LevelStats& s : result.level_stats) {
    reg.GetCounter(obs::LevelMetricName("mining", s.level, "candidates"))
        .Add(static_cast<int64_t>(s.num_candidates));
    reg.GetCounter(obs::LevelMetricName("mining", s.level, "frequent"))
        .Add(static_cast<int64_t>(s.num_frequent));
  }
  reg.GetCounter("phase2.ambiguous_after_sample")
      .Add(static_cast<int64_t>(result.ambiguous_after_sample));
  reg.GetCounter("phase2.ambiguous_with_unit_spread")
      .Add(static_cast<int64_t>(result.ambiguous_with_unit_spread));
  reg.GetCounter("phase2.accepted_from_sample")
      .Add(static_cast<int64_t>(result.accepted_from_sample));
  if (result.degradation_steps > 0) {
    reg.GetCounter("mining.degraded_runs").Increment();
    reg.GetCounter("mining.degradation_steps")
        .Add(result.degradation_steps);
  }
  if (result.effective_sample_size > 0) {
    reg.GetGauge("mining.last.effective_sample_size")
        .Set(static_cast<double>(result.effective_sample_size));
    reg.GetGauge("mining.last.final_epsilon").Set(result.final_epsilon);
  }
  reg.GetGauge("mining.last.scans").Set(static_cast<double>(result.scans));
  reg.GetGauge("mining.last.seconds").Set(result.seconds);
  reg.GetGauge("mining.last.frequent")
      .Set(static_cast<double>(result.frequent.size()));
  reg.GetGauge("mining.last.border")
      .Set(static_cast<double>(result.border.size()));
  NMINE_LOG(kInfo, "mining")
      .Msg("run finished")
      .Str("algorithm", algorithm)
      .Num("frequent", result.frequent.size())
      .Num("border", result.border.size())
      .Num("scans", result.scans)
      .Num("seconds", result.seconds)
      .Num("truncated", static_cast<int64_t>(result.truncated ? 1 : 0));
}

}  // namespace nmine
