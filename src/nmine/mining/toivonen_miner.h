#ifndef NMINE_MINING_TOIVONEN_MINER_H_
#define NMINE_MINING_TOIVONEN_MINER_H_

#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/sequence_database.h"
#include "nmine/mining/miner_options.h"
#include "nmine/mining/mining_result.h"

namespace nmine {

/// The "sampling-based level-wise search" baseline of Section 5.6
/// (Toivonen [25], Srikant & Agrawal [23]): identical Phase 1 and Phase 2
/// to the probabilistic algorithm, but the ambiguous patterns left after
/// sampling are verified against the full database LEVEL BY LEVEL (lowest
/// level first), batched by the memory budget — the strategy the paper
/// shows to be inefficient when patterns are long, because the match value
/// changes very little from level to level near the border.
class ToivonenMiner {
 public:
  ToivonenMiner(Metric metric, const MinerOptions& options)
      : metric_(metric), options_(options) {}

  MiningResult Mine(const SequenceDatabase& db,
                    const CompatibilityMatrix& c) const;

 private:
  Metric metric_;
  MinerOptions options_;
};

}  // namespace nmine

#endif  // NMINE_MINING_TOIVONEN_MINER_H_
