#ifndef NMINE_MINING_SYMBOL_SCAN_H_
#define NMINE_MINING_SYMBOL_SCAN_H_

#include <cstddef>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/status.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/db/sequence_database.h"
#include "nmine/exec/policy.h"
#include "nmine/stats/random.h"

namespace nmine {

/// Output of Phase 1 (Algorithm 4.1): per-symbol matches plus the random
/// sample drawn in the same pass.
struct SymbolScanResult {
  /// match[d] for every symbol d (Definition 3.7 applied to 1-patterns).
  std::vector<double> symbol_match;

  /// The in-memory sample (min(sample_size, N) sequences, uniform).
  InMemorySequenceDatabase sample;

  /// Scan outcome. On failure `symbol_match` and `sample` are empty; the
  /// caller must abort the mining run with this status.
  Status status = Status::Ok();
};

/// Phase 1 of the probabilistic algorithm: in ONE scan of `db`, computes
/// the match of every individual symbol and draws `sample_size` sequences
/// by sequential random sampling (Vitter). Implements the distinct-symbol
/// optimization of Section 4.1: within a sequence, only the first
/// occurrence of each distinct observed symbol updates max_match, giving
/// O(N * min(l*m, l + m^2)) total work.
///
/// When `sample_size == 0` no sample is kept (useful for computing symbol
/// matches alone).
///
/// Under a parallel exec policy the per-symbol match accumulation is
/// sharded across workers (deterministic ordered merge, bit-identical to
/// serial), while the reservoir sampler always runs on the scanning
/// thread in delivery order — it consumes RNG draws sequentially, so the
/// sample is the same for every thread count. Still exactly ONE scan.
SymbolScanResult ScanSymbolsAndSample(const SequenceDatabase& db,
                                      const CompatibilityMatrix& c,
                                      size_t sample_size, Rng* rng,
                                      const exec::ExecPolicy& exec = {});

/// Support-model analogue: symbol_match[d] is the fraction of sequences in
/// which d occurs at least once.
SymbolScanResult ScanSymbolSupports(const SequenceDatabase& db, size_t m,
                                    size_t sample_size, Rng* rng,
                                    const exec::ExecPolicy& exec = {});

}  // namespace nmine

#endif  // NMINE_MINING_SYMBOL_SCAN_H_
