#ifndef NMINE_MINING_GOVERNED_COUNT_H_
#define NMINE_MINING_GOVERNED_COUNT_H_

#include <functional>
#include <vector>

#include "nmine/core/pattern.h"
#include "nmine/core/status.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"

namespace nmine {

/// A fallible batch counter: evaluates `patterns` and fills `values`
/// (one entry per pattern, same order). Against a database, each call
/// charges one scan.
using BatchCountFn = std::function<Status(const std::vector<Pattern>&,
                                          std::vector<double>*)>;

/// Estimated transient bytes one pattern contributes to a counting batch
/// (its trie share plus its counter slots).
size_t CounterBytes(const Pattern& p);

/// Counts `patterns` through `count` in batches the resource governor
/// admits, concatenating values in input order.
///
/// With a null/unlimited governor this is a single `count` call —
/// bit-identical to the ungoverned path. When the memory budget binds,
/// the batch shrinks (degradation ladder step: more scans, each counting
/// fewer patterns, results still exact); kResourceExhausted only when not
/// even one counter fits. `run` is checked before every batch so a
/// cancelled run stops between scans.
Status GovernedCount(const std::vector<Pattern>& patterns,
                     runtime::ResourceGovernor* governor,
                     const runtime::RunControl* run,
                     const BatchCountFn& count, std::vector<double>* values);

}  // namespace nmine

#endif  // NMINE_MINING_GOVERNED_COUNT_H_
