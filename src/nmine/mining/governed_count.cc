#include "nmine/mining/governed_count.h"

#include <algorithm>

namespace nmine {

size_t CounterBytes(const Pattern& p) {
  // Trie share (nodes + child edges) plus accumulator slots across the
  // wave of per-shard partials. Deliberately a rough over-estimate: the
  // governor degrades a little early rather than a little late.
  return runtime::PatternBytes(p) + 4 * sizeof(double);
}

Status GovernedCount(const std::vector<Pattern>& patterns,
                     runtime::ResourceGovernor* governor,
                     const runtime::RunControl* run,
                     const BatchCountFn& count, std::vector<double>* values) {
  values->clear();
  if (patterns.empty()) return Status::Ok();
  if (governor == nullptr || governor->unlimited()) {
    Status s = runtime::CheckRun(run);
    if (!s.ok()) return s;
    return count(patterns, values);
  }
  values->reserve(patterns.size());
  size_t pos = 0;
  while (pos < patterns.size()) {
    Status s = runtime::CheckRun(run);
    if (!s.ok()) return s;
    const size_t want = patterns.size() - pos;
    const size_t admitted =
        governor->AdmitBatch(want, CounterBytes(patterns[pos]));
    if (admitted == 0) {
      return Status::ResourceExhausted(
          "memory budget cannot hold a single pattern counter");
    }
    std::vector<Pattern> batch(
        patterns.begin() + static_cast<long>(pos),
        patterns.begin() + static_cast<long>(pos + admitted));
    std::vector<double> batch_values;
    s = count(batch, &batch_values);
    if (!s.ok()) return s;
    values->insert(values->end(), batch_values.begin(), batch_values.end());
    pos += admitted;
  }
  return Status::Ok();
}

}  // namespace nmine
