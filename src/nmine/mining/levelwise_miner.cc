#include "nmine/mining/levelwise_miner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/governed_count.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace {

using CountFn = std::function<Status(const std::vector<Pattern>&,
                                     std::vector<double>*)>;
using ThresholdFn = std::function<double(const Pattern&)>;

/// Shared level-wise loop: `count` evaluates a batch of candidates (and
/// charges a scan when running against a database).
MiningResult RunLevelwise(size_t m, const ThresholdFn& threshold_of,
                          const PatternSpaceOptions& space, size_t max_level,
                          size_t max_candidates, const CountFn& count) {
  auto start = std::chrono::steady_clock::now();
  MiningResult result;

  std::vector<SymbolId> all_symbols(m);
  for (size_t i = 0; i < m; ++i) all_symbols[i] = static_cast<SymbolId>(i);

  std::vector<Pattern> candidates = Level1Candidates(all_symbols);
  std::vector<SymbolId> frequent_symbols;
  std::vector<Pattern> frequent_level;

  for (size_t level = 1; level <= max_level && !candidates.empty(); ++level) {
    obs::TraceSpan level_span("levelwise.level", "levelwise");
    NMINE_PROFILE_SCOPE("levelwise.level");
    level_span.Arg("level", level).Arg("candidates", candidates.size());
    std::vector<double> values;
    Status count_status = count(candidates, &values);
    if (!count_status.ok()) {
      // Levels already mined would be a silently incomplete answer; return
      // only the failure and what cost accounting exists.
      result.status = std::move(count_status);
      result.frequent = PatternSet();
      result.values = PatternMap<double>();
      result.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      return result;
    }
    LevelStats stats;
    stats.level = level;
    stats.num_candidates = candidates.size();
    frequent_level.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (values[i] >= threshold_of(candidates[i])) {
        frequent_level.push_back(candidates[i]);
        result.frequent.Insert(candidates[i]);
        result.values[candidates[i]] = values[i];
        if (level == 1) {
          frequent_symbols.push_back(candidates[i][0]);
        }
      }
    }
    stats.num_frequent = frequent_level.size();
    result.level_stats.push_back(stats);
    level_span.Arg("frequent", stats.num_frequent);
    NMINE_LOG(kDebug, "levelwise")
        .Msg("level counted")
        .Num("level", level)
        .Num("candidates", stats.num_candidates)
        .Num("frequent", stats.num_frequent);
    runtime::PublishProgress("levelwise.level", static_cast<int64_t>(level),
                             static_cast<int64_t>(stats.num_frequent));
    if (frequent_level.empty()) break;
    candidates = NextLevelCandidates(
        frequent_level, frequent_symbols, space,
        [&result](const Pattern& sub) {
          return result.frequent.Contains(sub);
        },
        max_candidates);
    if (candidates.size() >= max_candidates) {
      result.truncated = true;
    }
  }

  BuildBorder(&result);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

void BuildBorder(MiningResult* result) {
  // Insert longest-first so shorter patterns are subsumed immediately and
  // evictions are rare.
  std::vector<Pattern> sorted = result->frequent.ToSortedVector();
  std::reverse(sorted.begin(), sorted.end());
  result->border.clear();
  for (const Pattern& p : sorted) {
    result->border.Insert(p);
  }
}

namespace {

/// Fallible batch counter over a database for the level-wise loop.
CountFn DbCounter(const SequenceDatabase& db, const CompatibilityMatrix& c,
                  Metric metric, const exec::ExecPolicy& exec) {
  if (metric == Metric::kMatch) {
    return [&db, &c, exec](const std::vector<Pattern>& patterns,
                           std::vector<double>* values) {
      return TryCountMatches(db, c, patterns, values, exec);
    };
  }
  return [&db, exec](const std::vector<Pattern>& patterns,
                     std::vector<double>* values) {
    return TryCountSupports(db, patterns, values, exec);
  };
}

}  // namespace

MiningResult LevelwiseMiner::Mine(const SequenceDatabase& db,
                                  const CompatibilityMatrix& c) const {
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);
  CountFn inner = DbCounter(db, c, metric_, ExecPolicyFor(options_));
  // Under a memory budget each level is counted in governor-admitted
  // batches (extra scans, exact results); the run control stops the loop
  // between scans.
  CountFn count = [&governor, this, &inner](
                      const std::vector<Pattern>& patterns,
                      std::vector<double>* values) {
    return GovernedCount(patterns, &governor, options_.run_control, inner,
                         values);
  };
  int64_t scans_before = db.scan_count();
  obs::TraceSpan mine_span("mine.levelwise", "mining");
  NMINE_PROFILE_SCOPE("mine.levelwise");
  runtime::PublishPhase("mine.levelwise");
  const double threshold = options_.min_threshold;
  MiningResult result = RunLevelwise(
      c.size(), [threshold](const Pattern&) { return threshold; },
      options_.space, options_.max_level, options_.max_candidates_per_level,
      count);
  result.scans = db.scan_count() - scans_before;
  result.degradation_steps = governor.degradation_steps();
  EmitResultMetrics(result, "levelwise");
  return result;
}

MiningResult LevelwiseMiner::MineRecords(
    const std::vector<SequenceRecord>& records,
    const CompatibilityMatrix& c) const {
  CountFn count;
  const exec::ExecPolicy exec = ExecPolicyFor(options_);
  // A stop mid-count leaves garbage values, so each in-memory count is
  // followed by a run check before the level is classified.
  if (metric_ == Metric::kMatch) {
    count = [&records, &c, exec](const std::vector<Pattern>& patterns,
                                 std::vector<double>* values) {
      *values = CountMatchesInRecords(records, c, patterns, exec);
      return runtime::CheckRun(exec.run);
    };
  } else {
    count = [&records, exec](const std::vector<Pattern>& patterns,
                             std::vector<double>* values) {
      *values = CountSupportsInRecords(records, patterns, exec);
      return runtime::CheckRun(exec.run);
    };
  }
  const double threshold = options_.min_threshold;
  return RunLevelwise(
      c.size(), [threshold](const Pattern&) { return threshold; },
      options_.space, options_.max_level, options_.max_candidates_per_level,
      count);
}

MiningResult LevelwiseMiner::MineWithThreshold(
    const SequenceDatabase& db, const CompatibilityMatrix& c,
    const std::function<double(const Pattern&)>& threshold_of) const {
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);
  CountFn inner = DbCounter(db, c, metric_, ExecPolicyFor(options_));
  CountFn count = [&governor, this, &inner](
                      const std::vector<Pattern>& patterns,
                      std::vector<double>* values) {
    return GovernedCount(patterns, &governor, options_.run_control, inner,
                         values);
  };
  int64_t scans_before = db.scan_count();
  obs::TraceSpan mine_span("mine.levelwise_calibrated", "mining");
  NMINE_PROFILE_SCOPE("mine.levelwise_calibrated");
  runtime::PublishPhase("mine.levelwise_calibrated");
  MiningResult result = RunLevelwise(
      c.size(), threshold_of, options_.space, options_.max_level,
      options_.max_candidates_per_level, count);
  result.scans = db.scan_count() - scans_before;
  result.degradation_steps = governor.degradation_steps();
  EmitResultMetrics(result, "levelwise");
  return result;
}

}  // namespace nmine
