#include "nmine/mining/depth_first_miner.h"

#include <chrono>
#include <utility>
#include <vector>

#include "nmine/exec/parallel_for.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace {

/// One surviving window of the current pattern: the sequence it lies in,
/// its start offset, and the running compatibility product.
struct WindowEntry {
  int32_t seq_index;
  int32_t start;
  double product;
};

class DepthFirstSearch {
 public:
  DepthFirstSearch(Metric metric, const MinerOptions& options,
                   const CompatibilityMatrix& c,
                   std::vector<Sequence> sequences)
      : metric_(metric),
        options_(options),
        c_(c),
        sequences_(std::move(sequences)) {}

  void Run(MiningResult* result) {
    result_ = result;
    const size_t m = c_.size();
    // Root level: every symbol, with its full projection. The projections
    // are independent per symbol, so they are built in parallel into
    // per-symbol slots; the selection pass below stays serial and in
    // symbol order, making the result identical for every thread count.
    // The recursive extension stays serial: its per-level truncation
    // counters make the traversal order-dependent.
    std::vector<std::vector<WindowEntry>> projections(m);
    std::vector<double> matches(m, 0.0);
    exec::ParallelFor(
        options_.num_threads, m,
        [&](size_t d) {
          projections[d] = RootProjection(static_cast<SymbolId>(d));
          matches[d] = AverageMax(projections[d]);
        },
        options_.run_control);
    // A stop during the root build leaves some slots unfilled; the caller
    // detects it via CheckRun and discards the result.
    if (runtime::StopRequested(options_.run_control)) return;
    std::vector<SymbolId> frequent_symbols;
    std::vector<std::pair<Pattern, std::vector<WindowEntry>>> roots;
    for (size_t d = 0; d < m; ++d) {
      SymbolId sym = static_cast<SymbolId>(d);
      CountCandidate(1);
      if (matches[d] >= options_.min_threshold && !projections[d].empty()) {
        Pattern p({sym});
        Record(p, matches[d], 1);
        frequent_symbols.push_back(sym);
        roots.emplace_back(std::move(p), std::move(projections[d]));
      }
    }
    frequent_symbols_ = std::move(frequent_symbols);
    for (auto& [pattern, projection] : roots) {
      Extend(pattern, projection, 2);
    }
    FinalizeLevelStats();
  }

 private:
  double Factor(SymbolId true_sym, SymbolId observed) const {
    if (metric_ == Metric::kMatch) {
      return c_(true_sym, observed);
    }
    return true_sym == observed ? 1.0 : 0.0;
  }

  std::vector<WindowEntry> RootProjection(SymbolId sym) const {
    std::vector<WindowEntry> out;
    for (size_t si = 0; si < sequences_.size(); ++si) {
      const Sequence& seq = sequences_[si];
      for (size_t pos = 0; pos < seq.size(); ++pos) {
        double f = Factor(sym, seq[pos]);
        if (f > 0.0) {
          out.push_back({static_cast<int32_t>(si),
                         static_cast<int32_t>(pos), f});
        }
      }
    }
    return out;
  }

  /// Definition 3.7 on a projection: per-sequence maxima averaged over the
  /// whole database (sequences without surviving windows contribute 0).
  double AverageMax(const std::vector<WindowEntry>& projection) const {
    if (sequences_.empty()) return 0.0;
    double total = 0.0;
    int32_t current = -1;
    double best = 0.0;
    for (const WindowEntry& w : projection) {
      if (w.seq_index != current) {
        total += best;
        best = 0.0;
        current = w.seq_index;
      }
      if (w.product > best) best = w.product;
    }
    total += best;
    return total / static_cast<double>(sequences_.size());
  }

  void Record(const Pattern& p, double match, size_t level) {
    result_->frequent.Insert(p);
    result_->values[p] = match;
    if (level_frequent_.size() <= level) level_frequent_.resize(level + 1);
    ++level_frequent_[level];
  }

  void CountCandidate(size_t level) {
    if (level_candidates_.size() <= level) {
      level_candidates_.resize(level + 1);
    }
    ++level_candidates_[level];
  }

  void Extend(const Pattern& p, const std::vector<WindowEntry>& projection,
              size_t level) {
    // Cooperative stop: unwind the recursion between node expansions. The
    // caller discards the partial traversal via CheckRun.
    if (runtime::StopRequested(options_.run_control)) return;
    if (level > options_.max_level) return;
    const size_t span = p.length();
    for (size_t gap = 0; gap <= options_.space.max_gap; ++gap) {
      const size_t new_span = span + gap + 1;
      if (new_span > options_.space.max_span) break;
      for (SymbolId sym : frequent_symbols_) {
        if (level_candidates_.size() > level &&
            level_candidates_[level] >= options_.max_candidates_per_level) {
          result_->truncated = true;
          return;
        }
        CountCandidate(level);
        // Incremental projection: multiply each surviving window by the
        // factor at the extension position.
        std::vector<WindowEntry> child;
        child.reserve(projection.size() / 2);
        for (const WindowEntry& w : projection) {
          const Sequence& seq =
              sequences_[static_cast<size_t>(w.seq_index)];
          size_t ext_pos = static_cast<size_t>(w.start) + new_span - 1;
          if (ext_pos >= seq.size()) continue;
          double f = Factor(sym, seq[ext_pos]);
          if (f <= 0.0) continue;
          child.push_back({w.seq_index, w.start, w.product * f});
        }
        if (child.empty()) continue;
        double match = AverageMax(child);
        if (match < options_.min_threshold) continue;
        std::vector<SymbolId> body = p.body();
        body.insert(body.end(), gap, kWildcard);
        body.push_back(sym);
        Pattern extended(std::move(body));
        Record(extended, match, level);
        Extend(extended, child, level + 1);
      }
    }
  }

  void FinalizeLevelStats() {
    for (size_t level = 1; level < level_candidates_.size(); ++level) {
      LevelStats stats;
      stats.level = level;
      stats.num_candidates = level_candidates_[level];
      stats.num_frequent =
          level < level_frequent_.size() ? level_frequent_[level] : 0;
      result_->level_stats.push_back(stats);
    }
  }

  Metric metric_;
  const MinerOptions& options_;
  const CompatibilityMatrix& c_;
  std::vector<Sequence> sequences_;
  std::vector<SymbolId> frequent_symbols_;
  std::vector<size_t> level_candidates_;
  std::vector<size_t> level_frequent_;
  MiningResult* result_ = nullptr;
};

}  // namespace

MiningResult DepthFirstMiner::Mine(const SequenceDatabase& db,
                                   const CompatibilityMatrix& c) const {
  obs::TraceSpan mine_span("mine.depthfirst", "mining");
  NMINE_PROFILE_SCOPE("mine.depthfirst");
  auto start = std::chrono::steady_clock::now();
  int64_t scans_before = db.scan_count();
  MiningResult result;
  const runtime::RunControl* run = options_.run_control;
  runtime::ResourceGovernor governor(options_.memory_budget_bytes);

  auto fail = [&](Status status) {
    result.status = std::move(status);
    result.frequent = PatternSet();
    result.values = PatternMap<double>();
    result.border = Border();
    result.scans = db.scan_count() - scans_before;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    result.degradation_steps = governor.degradation_steps();
    EmitResultMetrics(result, "depthfirst");
    return result;
  };

  // Refuse to charge the load scan for a stopped run.
  Status rs = runtime::CheckRun(run);
  if (!rs.ok()) return fail(rs);

  // Single accounted pass: the data is memory-resident from here on. The
  // resident database is this miner's dominant allocation, so it is
  // charged against the memory budget; depth-first has no sample to
  // shrink, so a budget too small for the database fails outright.
  std::vector<Sequence> sequences;
  sequences.reserve(db.NumSequences());
  {
    obs::TraceSpan load_span("depthfirst.load", "depthfirst");
    NMINE_PROFILE_SCOPE("depthfirst.load");
    runtime::PublishPhase("depthfirst.load");
    Status load_status = db.Scan(
        [&sequences](const SequenceRecord& r) {
          sequences.push_back(r.symbols);
        },
        /*restart=*/[&sequences] { sequences.clear(); });
    if (load_status.ok()) load_status = runtime::CheckRun(run);
    if (!load_status.ok()) return fail(std::move(load_status));
  }
  if (!governor.unlimited()) {
    size_t resident_bytes = 0;
    for (const Sequence& s : sequences) {
      resident_bytes += s.size() * sizeof(SymbolId) + sizeof(Sequence);
    }
    Status charge = governor.Charge("resident-database", resident_bytes);
    if (!charge.ok()) return fail(std::move(charge));
  }

  DepthFirstSearch search(metric_, options_, c, std::move(sequences));
  {
    obs::TraceSpan search_span("depthfirst.search", "depthfirst");
    NMINE_PROFILE_SCOPE("depthfirst.search");
    runtime::PublishPhase("depthfirst.search");
    search.Run(&result);
  }
  // A cancel/deadline mid-search leaves a partial traversal in `result`;
  // discard it and surface the typed status.
  rs = runtime::CheckRun(run);
  if (!rs.ok()) return fail(rs);

  BuildBorder(&result);
  result.scans = db.scan_count() - scans_before;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EmitResultMetrics(result, "depthfirst");
  return result;
}

}  // namespace nmine
