#include "nmine/mining/phase3_checkpoint.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nmine/obs/logger.h"

namespace nmine {
namespace {

constexpr const char kMagic[] = "nmine-phase3-checkpoint";
constexpr int kVersion = 1;

/// One pattern per line: `<value> <token> <token> ...` where a token is a
/// raw symbol id or `*`. Doubles are printed with max_digits10 so the
/// resumed run reproduces the interrupted run's values bit-for-bit.
void WritePatternLine(std::ostream& out, const Pattern& p, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf << ' ' << p.ToString() << '\n';
}

bool ParsePatternLine(const std::string& line, Pattern* p, double* value) {
  std::istringstream in(line);
  if (!(in >> *value)) return false;
  std::vector<SymbolId> body;
  std::string token;
  while (in >> token) {
    if (token == "*") {
      body.push_back(kWildcard);
    } else {
      try {
        size_t pos = 0;
        long id = std::stol(token, &pos);
        if (pos != token.size() || id < 0) return false;
        body.push_back(static_cast<SymbolId>(id));
      } catch (...) {
        return false;
      }
    }
  }
  if (!Pattern::IsValidBody(body)) return false;
  *p = Pattern(std::move(body));
  return true;
}

}  // namespace

Status WritePhase3Checkpoint(const std::string& path,
                             const Phase3Checkpoint& cp) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open checkpoint temp file '" + tmp +
                                 "'");
    }
    out << kMagic << " v" << kVersion << '\n';
    out << "metric " << ToString(cp.metric) << '\n';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", cp.min_threshold);
    out << "threshold " << buf << '\n';
    out << "db " << cp.num_sequences << ' ' << cp.total_symbols << '\n';
    out << "scans " << cp.scans_completed << '\n';
    out << "diag " << cp.ambiguous_after_sample << ' '
        << cp.ambiguous_with_unit_spread << ' ' << cp.accepted_from_sample
        << ' ' << (cp.truncated ? 1 : 0) << '\n';
    out << "symbol_match " << cp.symbol_match.size();
    for (double v : cp.symbol_match) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << ' ' << buf;
    }
    out << '\n';
    out << "frequent " << cp.resolved_frequent.size() << '\n';
    for (const auto& [p, v] : cp.resolved_frequent) {
      WritePatternLine(out, p, v);
    }
    out << "unresolved " << cp.unresolved.size() << '\n';
    for (const auto& [p, v] : cp.unresolved) {
      WritePatternLine(out, p, v);
    }
    out.flush();
    if (!out) {
      return Status::Unavailable("short write to checkpoint temp file '" +
                                 tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Unavailable("cannot rename checkpoint into place: " +
                               ec.message());
  }
  return Status::Ok();
}

Status LoadPhase3Checkpoint(const std::string& path,
                            const Phase3Checkpoint& expected,
                            Phase3Checkpoint* cp) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no checkpoint at '" + path + "'");
  }
  auto corrupt = [&path](const std::string& what) {
    return Status::DataLoss("malformed checkpoint '" + path + "': " + what);
  };

  std::string line;
  if (!std::getline(in, line) ||
      line != std::string(kMagic) + " v" + std::to_string(kVersion)) {
    return corrupt("bad header");
  }

  Phase3Checkpoint loaded;
  std::string word, metric_name;
  if (!(in >> word >> metric_name) || word != "metric") {
    return corrupt("missing metric");
  }
  if (metric_name == "match") {
    loaded.metric = Metric::kMatch;
  } else if (metric_name == "support") {
    loaded.metric = Metric::kSupport;
  } else {
    return corrupt("unknown metric '" + metric_name + "'");
  }
  if (!(in >> word >> loaded.min_threshold) || word != "threshold") {
    return corrupt("missing threshold");
  }
  if (!(in >> word >> loaded.num_sequences >> loaded.total_symbols) ||
      word != "db") {
    return corrupt("missing db fingerprint");
  }
  if (!(in >> word >> loaded.scans_completed) || word != "scans" ||
      loaded.scans_completed < 0) {
    return corrupt("missing scans");
  }
  int truncated = 0;
  if (!(in >> word >> loaded.ambiguous_after_sample >>
        loaded.ambiguous_with_unit_spread >> loaded.accepted_from_sample >>
        truncated) ||
      word != "diag") {
    return corrupt("missing diagnostics");
  }
  loaded.truncated = truncated != 0;
  size_t n_match = 0;
  if (!(in >> word >> n_match) || word != "symbol_match") {
    return corrupt("missing symbol_match");
  }
  loaded.symbol_match.resize(n_match);
  for (size_t i = 0; i < n_match; ++i) {
    if (!(in >> loaded.symbol_match[i])) {
      return corrupt("short symbol_match");
    }
  }

  auto read_patterns =
      [&](const char* section,
          std::vector<std::pair<Pattern, double>>* out) -> Status {
    size_t count = 0;
    if (!(in >> word >> count) || word != section) {
      return corrupt(std::string("missing ") + section + " section");
    }
    std::getline(in, line);  // consume end of the count line
    out->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        return corrupt(std::string("short ") + section + " section");
      }
      Pattern p;
      double v = 0.0;
      if (!ParsePatternLine(line, &p, &v)) {
        return corrupt("bad pattern line '" + line + "'");
      }
      out->emplace_back(std::move(p), v);
    }
    return Status::Ok();
  };
  Status s = read_patterns("frequent", &loaded.resolved_frequent);
  if (!s.ok()) return s;
  s = read_patterns("unresolved", &loaded.unresolved);
  if (!s.ok()) return s;

  if (loaded.metric != expected.metric ||
      loaded.min_threshold != expected.min_threshold ||
      loaded.num_sequences != expected.num_sequences ||
      loaded.total_symbols != expected.total_symbols) {
    return Status::FailedPrecondition(
        "checkpoint '" + path +
        "' was written for a different run (metric/threshold/database "
        "mismatch); delete it to start fresh");
  }
  *cp = std::move(loaded);
  return Status::Ok();
}

void RemovePhase3Checkpoint(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    NMINE_LOG(kWarn, "phase3")
        .Msg("could not remove checkpoint")
        .Str("path", path)
        .Str("error", ec.message());
  }
}

}  // namespace nmine
