#include "nmine/mining/phase3_checkpoint.h"

#include <utility>

#include "nmine/runtime/checkpoint_io.h"
#include "nmine/runtime/run_checkpoint.h"

namespace nmine {
namespace {

// The Phase-3 checkpoint is the kPhase3Progress stage of the whole-run
// checkpoint format (runtime/run_checkpoint.h); these adapters map the
// legacy struct onto it. The sampling guard fields stay at their zero
// defaults on both the write and the expected side, so Phase-3-only
// callers keep their exact guard semantics.

runtime::RunCheckpoint ToRunCheckpoint(const Phase3Checkpoint& cp) {
  runtime::RunCheckpoint out;
  out.stage = runtime::RunStage::kPhase3Progress;
  out.metric = cp.metric;
  out.min_threshold = cp.min_threshold;
  out.num_sequences = cp.num_sequences;
  out.total_symbols = cp.total_symbols;
  out.scans_completed = cp.scans_completed;
  out.ambiguous_after_sample = cp.ambiguous_after_sample;
  out.ambiguous_with_unit_spread = cp.ambiguous_with_unit_spread;
  out.accepted_from_sample = cp.accepted_from_sample;
  out.truncated = cp.truncated;
  out.symbol_match = cp.symbol_match;
  out.resolved_frequent = cp.resolved_frequent;
  out.unresolved = cp.unresolved;
  return out;
}

Phase3Checkpoint FromRunCheckpoint(runtime::RunCheckpoint cp) {
  Phase3Checkpoint out;
  out.metric = cp.metric;
  out.min_threshold = cp.min_threshold;
  out.num_sequences = cp.num_sequences;
  out.total_symbols = cp.total_symbols;
  out.scans_completed = cp.scans_completed;
  out.ambiguous_after_sample = cp.ambiguous_after_sample;
  out.ambiguous_with_unit_spread = cp.ambiguous_with_unit_spread;
  out.accepted_from_sample = cp.accepted_from_sample;
  out.truncated = cp.truncated;
  out.symbol_match = std::move(cp.symbol_match);
  out.resolved_frequent = std::move(cp.resolved_frequent);
  out.unresolved = std::move(cp.unresolved);
  return out;
}

}  // namespace

Status WritePhase3Checkpoint(const std::string& path,
                             const Phase3Checkpoint& cp) {
  return runtime::WriteRunCheckpoint(path, ToRunCheckpoint(cp));
}

Status LoadPhase3Checkpoint(const std::string& path,
                            const Phase3Checkpoint& expected,
                            Phase3Checkpoint* cp) {
  runtime::RunCheckpoint loaded;
  Status s =
      runtime::LoadRunCheckpoint(path, ToRunCheckpoint(expected), &loaded);
  if (!s.ok()) return s;
  *cp = FromRunCheckpoint(std::move(loaded));
  return Status::Ok();
}

void RemovePhase3Checkpoint(const std::string& path) {
  runtime::BestEffortRemoveFile(path, "phase3");
}

}  // namespace nmine
