#ifndef NMINE_EVAL_TIMER_H_
#define NMINE_EVAL_TIMER_H_

#include <chrono>

namespace nmine {

/// Wall-clock stopwatch for experiment harnesses.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last Reset().
  double Seconds() const;

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nmine

#endif  // NMINE_EVAL_TIMER_H_
