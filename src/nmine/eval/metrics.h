#ifndef NMINE_EVAL_METRICS_H_
#define NMINE_EVAL_METRICS_H_

#include <cstddef>

#include "nmine/lattice/pattern_set.h"

namespace nmine {

/// Section 5.1's quality measures for a discovered pattern set R' against
/// the reference set R mined from the noise-free standard database:
///   accuracy     = |R' ∩ R| / |R'|  (how selective the model is)
///   completeness = |R' ∩ R| / |R|   (how well it covers the expectation)
struct ModelQuality {
  double accuracy = 1.0;
  double completeness = 1.0;
  size_t discovered = 0;  // |R'|
  size_t reference = 0;   // |R|
  size_t common = 0;      // |R' ∩ R|
};

/// Computes accuracy/completeness of `discovered` against `reference`.
/// Empty sets yield the conventional value 1 for the affected ratio.
ModelQuality CompareResultSets(const PatternSet& discovered,
                               const PatternSet& reference);

/// Restricts `s` to patterns with exactly `num_symbols` non-eternal
/// symbols (Figure 7(c)/(d) evaluate quality per pattern length).
PatternSet FilterByLevel(const PatternSet& s, size_t num_symbols);

/// Error rate of Section 5.5: mislabeled patterns (in exactly one of the
/// two sets) over the number of reference frequent patterns.
double ErrorRate(const PatternSet& discovered, const PatternSet& reference);

}  // namespace nmine

#endif  // NMINE_EVAL_METRICS_H_
