#include "nmine/eval/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace nmine {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(long long value) { return std::to_string(value); }

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& out) const {
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace nmine
