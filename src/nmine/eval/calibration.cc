#include "nmine/eval/calibration.h"

namespace nmine {

MatchCalibration::MatchCalibration(const CompatibilityMatrix& c,
                                   CalibrationMode mode) {
  const size_t m = c.size();
  deflation_.assign(m, 1.0);
  for (size_t d = 0; d < m; ++d) {
    SymbolId sd = static_cast<SymbolId>(d);
    if (mode == CalibrationMode::kDiagonalSurvival) {
      deflation_[d] = c(sd, sd);
      continue;
    }
    // Row sum of C recovers the emission normalizer under uniform priors:
    // P(obs = x | true = d) = C(d, x) / sum_y C(d, y).
    double row_sum = 0.0;
    for (const CompatibilityMatrix::Entry& e : c.RowNonZeros(sd)) {
      row_sum += e.value;
    }
    if (row_sum <= 0.0) {
      deflation_[d] = 0.0;
      continue;
    }
    double g = 0.0;
    for (const CompatibilityMatrix::Entry& e : c.RowNonZeros(sd)) {
      g += (e.value / row_sum) * e.value;
    }
    deflation_[d] = g;
  }
}

double MatchCalibration::PatternDeflation(const Pattern& p) const {
  double g = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId s = p[i];
    if (IsWildcard(s)) continue;
    g *= deflation_[static_cast<size_t>(s)];
  }
  return g;
}

}  // namespace nmine
