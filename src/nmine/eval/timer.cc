#include "nmine/eval/timer.h"

namespace nmine {

double WallTimer::Seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace nmine
