#ifndef NMINE_EVAL_CALIBRATION_H_
#define NMINE_EVAL_CALIBRATION_H_

#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"

namespace nmine {

/// Noise-deflation calibration for the match metric.
///
/// Under a noise channel, the match of a pattern is systematically
/// deflated relative to its noise-free support: for each pattern position
/// holding symbol d, the expected contribution of that position is
///
///   g_d = E_obs[C(d, obs) | true = d] = sum_x P(obs = x | true = d) C(d, x)
///
/// (for the paper's uniform channel g = (1-alpha)^2 + alpha^2/(m-1), which
/// is strictly below the support survival rate (1-alpha)). Comparing the
/// raw match of a k-pattern against the same threshold as its noise-free
/// support therefore under-selects long patterns; an unbiased comparison
/// scales the threshold by the pattern's total expected deflation
/// Prod_i g_{d_i}. The match model has the knowledge required for this
/// correction (the compatibility matrix); the support baseline does not —
/// which is precisely the asymmetry the paper's robustness experiments
/// exploit. See EXPERIMENTS.md for the full derivation and why the
/// paper's Figure-7 shapes require this step.
/// How the per-symbol deflation is estimated.
enum class CalibrationMode {
  /// g_d = E[C(d, obs) | true = d]: the unbiased expectation, including
  /// partial credit from substitutions. The right choice for concentrated
  /// channels (few likely substitutions with sizable posteriors), where
  /// partial credit genuinely carries signal.
  kExpectedDeflation,
  /// g_d = C(d, d): the survival probability of an unperturbed position.
  /// A tighter threshold for wide channels (e.g. uniform noise over many
  /// symbols), where per-substitution posteriors are tiny and the
  /// expectation-based threshold would sink below the background
  /// partial-credit floor, flooding the candidate space with
  /// substitution variants.
  kDiagonalSurvival,
};

class MatchCalibration {
 public:
  /// Derives per-symbol deflations from `c`. For kExpectedDeflation the
  /// emission probabilities are recovered by row-normalizing C (exact
  /// when symbol priors are uniform, which matches the paper's Section-5
  /// setup).
  explicit MatchCalibration(
      const CompatibilityMatrix& c,
      CalibrationMode mode = CalibrationMode::kExpectedDeflation);

  /// Expected per-position deflation of symbol d.
  double SymbolDeflation(SymbolId d) const {
    return deflation_[static_cast<size_t>(d)];
  }

  /// Total expected deflation of `p`: product over non-eternal positions.
  double PatternDeflation(const Pattern& p) const;

  /// The calibrated threshold for `p` given a noise-free (support-scale)
  /// threshold: base_threshold * PatternDeflation(p).
  double ThresholdFor(const Pattern& p, double base_threshold) const {
    return base_threshold * PatternDeflation(p);
  }

  const std::vector<double>& deflations() const { return deflation_; }

 private:
  std::vector<double> deflation_;
};

}  // namespace nmine

#endif  // NMINE_EVAL_CALIBRATION_H_
