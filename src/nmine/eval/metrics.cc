#include "nmine/eval/metrics.h"

namespace nmine {

ModelQuality CompareResultSets(const PatternSet& discovered,
                               const PatternSet& reference) {
  ModelQuality q;
  q.discovered = discovered.size();
  q.reference = reference.size();
  q.common = discovered.IntersectionSize(reference);
  q.accuracy = q.discovered == 0
                   ? 1.0
                   : static_cast<double>(q.common) /
                         static_cast<double>(q.discovered);
  q.completeness = q.reference == 0
                       ? 1.0
                       : static_cast<double>(q.common) /
                             static_cast<double>(q.reference);
  return q;
}

PatternSet FilterByLevel(const PatternSet& s, size_t num_symbols) {
  PatternSet out;
  for (const Pattern& p : s) {
    if (p.NumSymbols() == num_symbols) {
      out.Insert(p);
    }
  }
  return out;
}

double ErrorRate(const PatternSet& discovered, const PatternSet& reference) {
  if (reference.empty()) return 0.0;
  size_t common = discovered.IntersectionSize(reference);
  size_t mislabeled =
      (discovered.size() - common) + (reference.size() - common);
  return static_cast<double>(mislabeled) /
         static_cast<double>(reference.size());
}

}  // namespace nmine
