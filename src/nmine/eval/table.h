#ifndef NMINE_EVAL_TABLE_H_
#define NMINE_EVAL_TABLE_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nmine {

/// Minimal aligned-console / CSV table used by the benchmark harnesses to
/// print the series behind every figure of the paper.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string Num(double value, int precision = 4);
  static std::string Int(long long value);

  /// Writes an aligned, pipe-separated table.
  void Print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nmine

#endif  // NMINE_EVAL_TABLE_H_
