#ifndef NMINE_CORE_COMPATIBILITY_MATRIX_H_
#define NMINE_CORE_COMPATIBILITY_MATRIX_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "nmine/core/symbol.h"

namespace nmine {

/// Outcome of CompatibilityMatrix::Validate().
struct MatrixValidation {
  bool ok = true;
  std::string message;
};

/// The compatibility matrix of Definition 3.4.
///
/// Entry C(d_i, d_j) = Prob(true_value = d_i | observed_value = d_j): the
/// conditional probability that d_i is the true symbol given that d_j was
/// observed. Columns (fixed observed symbol) are probability distributions
/// and must sum to 1; the matrix need not be symmetric. The eternal symbol
/// is fully compatible with everything: C(*, d_j) = 1 for all j.
///
/// In a noise-free environment the matrix is the identity and the match
/// metric degenerates to classical support (Section 3, observation 3).
class CompatibilityMatrix {
 public:
  /// Creates an m x m zero matrix (not yet column-stochastic; fill with Set).
  explicit CompatibilityMatrix(size_t m);

  /// Creates a matrix from row-major `rows` where rows[i][j] = C(d_i, d_j).
  explicit CompatibilityMatrix(const std::vector<std::vector<double>>& rows);

  /// The identity matrix: the noise-free environment.
  static CompatibilityMatrix Identity(size_t m);

  // Hand-written because the lazy-index guard is an atomic + mutex (see
  // EnsureIndex); copies take the source's entries and rebuild the index
  // lazily on first use.
  CompatibilityMatrix(const CompatibilityMatrix& other);
  CompatibilityMatrix& operator=(const CompatibilityMatrix& other);
  CompatibilityMatrix(CompatibilityMatrix&& other) noexcept;
  CompatibilityMatrix& operator=(CompatibilityMatrix&& other) noexcept;

  /// Number of distinct symbols m.
  size_t size() const { return m_; }

  /// Returns C(true_sym, observed). `true_sym` may be kWildcard (yields 1.0,
  /// per the paper's convention C(*, d) = 1); `observed` must be a valid
  /// symbol id.
  double operator()(SymbolId true_sym, SymbolId observed) const {
    if (IsWildcard(true_sym)) return 1.0;
    return data_[static_cast<size_t>(true_sym) * m_ +
                 static_cast<size_t>(observed)];
  }

  /// Contiguous column for `observed`: Column(d)[t] == C(t, d) for every
  /// non-wildcard true symbol t. Backed by a column-major mirror kept in
  /// sync by Set(), so this is a single pointer add — match kernels hoist
  /// it out of their innermost product (one lookup per sequence position
  /// instead of one indexed load per (position, pattern symbol) pair).
  /// Callers handle the wildcard (factor 1.0) before indexing.
  const double* Column(SymbolId observed) const {
    return col_data_.data() + static_cast<size_t>(observed) * m_;
  }

  /// Sets C(true_sym, observed) = value. Invalidates cached indexes.
  void Set(SymbolId true_sym, SymbolId observed, double value);

  /// Checks that every entry lies in [0, 1] and every column sums to 1
  /// within `tolerance`.
  MatrixValidation Validate(double tolerance = 1e-6) const;

  /// True if this is exactly the identity matrix (noise-free environment).
  bool IsIdentity() const;

  /// Fraction of entries that are zero (matrices are sparse in practice;
  /// see Section 5.7).
  double Sparsity() const;

  /// A (true_sym, probability) pair within one observed-symbol column.
  struct Entry {
    SymbolId symbol;
    double value;
  };

  /// Non-zero entries of the column for `observed`: all true symbols that
  /// `observed` may be a (mis)representation of. The index is built lazily
  /// and cached; Set() invalidates it. The lazy build is thread-safe
  /// (double-checked under a mutex), so concurrent scan workers may race
  /// to the first lookup; Set() itself is NOT safe against concurrent
  /// readers — mutate matrices only before handing them to miners.
  const std::vector<Entry>& ColumnNonZeros(SymbolId observed) const;

  /// Non-zero entries of the row for `true_sym`: all observed symbols that
  /// `true_sym` may show up as.
  const std::vector<Entry>& RowNonZeros(SymbolId true_sym) const;

  /// The largest entry in the column for `observed`.
  double MaxInColumn(SymbolId observed) const;

  /// The matrix in log space, as the SIMD match kernels consume it.
  struct LogView {
    /// m x m row-major single-precision logs: rows[true * m + observed] ==
    /// logf(C(true, observed)), -inf for zero entries.
    const float* rows = nullptr;
    size_t m = 0;
    /// max |log C| over the finite (non-zero) entries; the kernels derive
    /// their screening guard band from it (see DESIGN.md section 16).
    float max_abs_log = 0.0f;
  };

  /// Single-precision log mirror of the matrix, built lazily with the
  /// sparse indexes (same thread-safety contract as ColumnNonZeros). Log
  /// products over a window become float additions with no underflow
  /// rescaling; the match kernels use this as a conservative screen and
  /// re-derive exact values from the double entries.
  LogView LogRows() const;

 private:
  void EnsureIndex() const;

  size_t m_;
  std::vector<double> data_;      // row-major: data_[true * m_ + observed]
  std::vector<double> col_data_;  // column-major mirror for Column()

  // Lazily built sparse indexes (cleared by Set()). The guard is atomic so
  // EnsureIndex can double-check without locking on the hot path.
  mutable std::atomic<bool> index_built_{false};
  mutable std::mutex index_mutex_;
  mutable std::vector<std::vector<Entry>> column_nonzeros_;
  mutable std::vector<std::vector<Entry>> row_nonzeros_;
  mutable std::vector<double> column_max_;
  mutable std::vector<float> log_rows_;
  mutable float max_abs_log_ = 0.0f;
};

}  // namespace nmine

#endif  // NMINE_CORE_COMPATIBILITY_MATRIX_H_
