#ifndef NMINE_CORE_METRIC_H_
#define NMINE_CORE_METRIC_H_

namespace nmine {

/// Which significance metric drives the mining.
enum class Metric {
  kSupport,  // classical exact-occurrence frequency
  kMatch,    // the paper's noise-compensated metric (Definition 3.7)
};

const char* ToString(Metric metric);

}  // namespace nmine

#endif  // NMINE_CORE_METRIC_H_
