#include "nmine/core/compatibility_matrix.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "nmine/core/check.h"

namespace nmine {

CompatibilityMatrix::CompatibilityMatrix(size_t m)
    : m_(m), data_(m * m, 0.0), col_data_(m * m, 0.0) {}

CompatibilityMatrix::CompatibilityMatrix(
    const std::vector<std::vector<double>>& rows)
    : m_(rows.size()),
      data_(rows.size() * rows.size(), 0.0),
      col_data_(rows.size() * rows.size(), 0.0) {
  for (size_t i = 0; i < m_; ++i) {
    // Rows often come from parsed user input; a ragged matrix must die
    // loudly even in release builds instead of reading out of bounds.
    NMINE_CHECK(rows[i].size() == m_,
                "CompatibilityMatrix row length differs from the number of "
                "rows (matrix must be square)");
    for (size_t j = 0; j < m_; ++j) {
      data_[i * m_ + j] = rows[i][j];
      col_data_[j * m_ + i] = rows[i][j];
    }
  }
}

CompatibilityMatrix CompatibilityMatrix::Identity(size_t m) {
  CompatibilityMatrix c(m);
  for (size_t i = 0; i < m; ++i) {
    c.data_[i * m + i] = 1.0;
    c.col_data_[i * m + i] = 1.0;
  }
  return c;
}

CompatibilityMatrix::CompatibilityMatrix(const CompatibilityMatrix& other)
    : m_(other.m_), data_(other.data_), col_data_(other.col_data_) {}

CompatibilityMatrix& CompatibilityMatrix::operator=(
    const CompatibilityMatrix& other) {
  if (this == &other) return *this;
  m_ = other.m_;
  data_ = other.data_;
  col_data_ = other.col_data_;
  index_built_.store(false, std::memory_order_release);
  column_nonzeros_.clear();
  row_nonzeros_.clear();
  column_max_.clear();
  return *this;
}

CompatibilityMatrix::CompatibilityMatrix(CompatibilityMatrix&& other) noexcept
    : m_(other.m_),
      data_(std::move(other.data_)),
      col_data_(std::move(other.col_data_)) {}

CompatibilityMatrix& CompatibilityMatrix::operator=(
    CompatibilityMatrix&& other) noexcept {
  if (this == &other) return *this;
  m_ = other.m_;
  data_ = std::move(other.data_);
  col_data_ = std::move(other.col_data_);
  index_built_.store(false, std::memory_order_release);
  column_nonzeros_.clear();
  row_nonzeros_.clear();
  column_max_.clear();
  return *this;
}

void CompatibilityMatrix::Set(SymbolId true_sym, SymbolId observed,
                              double value) {
  NMINE_CHECK(!IsWildcard(true_sym) && !IsWildcard(observed) &&
                  static_cast<size_t>(true_sym) < m_ &&
                  static_cast<size_t>(observed) < m_,
              "CompatibilityMatrix::Set with out-of-range symbol");
  data_[static_cast<size_t>(true_sym) * m_ + static_cast<size_t>(observed)] =
      value;
  col_data_[static_cast<size_t>(observed) * m_ +
            static_cast<size_t>(true_sym)] = value;
  index_built_.store(false, std::memory_order_release);
}

MatrixValidation CompatibilityMatrix::Validate(double tolerance) const {
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      double v = data_[i * m_ + j];
      if (v < -tolerance || v > 1.0 + tolerance || std::isnan(v)) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "entry C(d%zu, d%zu) = %g outside [0, 1]", i + 1, j + 1,
                      v);
        return {false, buf};
      }
    }
  }
  for (size_t j = 0; j < m_; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      sum += data_[i * m_ + j];
    }
    if (std::fabs(sum - 1.0) > tolerance) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "column for observed d%zu sums to %g, expected 1", j + 1,
                    sum);
      return {false, buf};
    }
  }
  return {true, ""};
}

bool CompatibilityMatrix::IsIdentity() const {
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      double expected = (i == j) ? 1.0 : 0.0;
      if (data_[i * m_ + j] != expected) return false;
    }
  }
  return true;
}

double CompatibilityMatrix::Sparsity() const {
  if (m_ == 0) return 0.0;
  size_t zeros = 0;
  for (double v : data_) {
    if (v == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

const std::vector<CompatibilityMatrix::Entry>&
CompatibilityMatrix::ColumnNonZeros(SymbolId observed) const {
  EnsureIndex();
  return column_nonzeros_[static_cast<size_t>(observed)];
}

const std::vector<CompatibilityMatrix::Entry>&
CompatibilityMatrix::RowNonZeros(SymbolId true_sym) const {
  EnsureIndex();
  return row_nonzeros_[static_cast<size_t>(true_sym)];
}

double CompatibilityMatrix::MaxInColumn(SymbolId observed) const {
  EnsureIndex();
  return column_max_[static_cast<size_t>(observed)];
}

CompatibilityMatrix::LogView CompatibilityMatrix::LogRows() const {
  EnsureIndex();
  return {log_rows_.data(), m_, max_abs_log_};
}

void CompatibilityMatrix::EnsureIndex() const {
  // Double-checked: parallel scan workers may race to the first lookup.
  // The acquire load pairs with the release store so a reader that sees
  // index_built_ == true also sees the fully-built index vectors.
  if (index_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_built_.load(std::memory_order_relaxed)) return;
  column_nonzeros_.assign(m_, {});
  row_nonzeros_.assign(m_, {});
  column_max_.assign(m_, 0.0);
  log_rows_.assign(m_ * m_, 0.0f);
  max_abs_log_ = 0.0f;
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      double v = data_[i * m_ + j];
      if (v != 0.0) {
        column_nonzeros_[j].push_back(
            {static_cast<SymbolId>(i), v});
        row_nonzeros_[i].push_back({static_cast<SymbolId>(j), v});
        if (v > column_max_[j]) column_max_[j] = v;
      }
      // Log mirror: -inf marks a zero entry, so a window containing it
      // sums to -inf and is screened out without special-casing.
      float lv = v == 0.0 ? -std::numeric_limits<float>::infinity()
                          : static_cast<float>(std::log(v));
      log_rows_[i * m_ + j] = lv;
      if (v != 0.0 && std::abs(lv) > max_abs_log_) {
        max_abs_log_ = std::abs(lv);
      }
    }
  }
  index_built_.store(true, std::memory_order_release);
}

}  // namespace nmine
