#include "nmine/core/match.h"

#include <cassert>

namespace nmine {

double SegmentMatch(const CompatibilityMatrix& c, const Pattern& p,
                    const Sequence& seq, size_t offset) {
  assert(offset + p.length() <= seq.size());
  double match = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId true_sym = p[i];
    if (IsWildcard(true_sym)) continue;
    match *= c(true_sym, seq[offset + i]);
    if (match == 0.0) return 0.0;
  }
  return match;
}

double SequenceMatch(const CompatibilityMatrix& c, const Pattern& p,
                     const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  double best = 0.0;
  const size_t windows = seq.size() - p.length() + 1;
  for (size_t offset = 0; offset < windows; ++offset) {
    double m = SegmentMatch(c, p, seq, offset);
    if (m > best) best = m;
  }
  return best;
}

double SequenceSupport(const Pattern& p, const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  const size_t windows = seq.size() - p.length() + 1;
  for (size_t offset = 0; offset < windows; ++offset) {
    bool hit = true;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId s = p[i];
      if (!IsWildcard(s) && s != seq[offset + i]) {
        hit = false;
        break;
      }
    }
    if (hit) return 1.0;
  }
  return 0.0;
}

}  // namespace nmine
