#include "nmine/core/match.h"

#include <cassert>
#include <vector>

namespace nmine {

double SegmentMatch(const CompatibilityMatrix& c, const Pattern& p,
                    const Sequence& seq, size_t offset) {
  assert(offset + p.length() <= seq.size());
  double match = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId true_sym = p[i];
    if (IsWildcard(true_sym)) continue;
    // Column(observed)[true] is the same entry as c(true, observed); the
    // column pointer keeps the inner load a single index.
    match *= c.Column(seq[offset + i])[static_cast<size_t>(true_sym)];
    if (match == 0.0) return 0.0;
  }
  return match;
}

double SequenceMatch(const CompatibilityMatrix& c, const Pattern& p,
                     const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  // Hoist the per-position column lookup out of the sliding windows: each
  // sequence position is visited by up to p.length() windows, and the
  // column pointer depends only on the observed symbol at that position.
  constexpr size_t kStackPositions = 512;
  const double* stack_cols[kStackPositions];
  std::vector<const double*> heap_cols;
  const double** cols = stack_cols;
  if (seq.size() > kStackPositions) {
    heap_cols.resize(seq.size());
    cols = heap_cols.data();
  }
  for (size_t j = 0; j < seq.size(); ++j) {
    cols[j] = c.Column(seq[j]);
  }
  double best = 0.0;
  const size_t windows = seq.size() - p.length() + 1;
  for (size_t offset = 0; offset < windows; ++offset) {
    double match = 1.0;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId true_sym = p[i];
      if (IsWildcard(true_sym)) continue;
      match *= cols[offset + i][static_cast<size_t>(true_sym)];
      if (match == 0.0) break;
    }
    if (match > best) best = match;
  }
  return best;
}

double SequenceSupport(const Pattern& p, const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  const size_t windows = seq.size() - p.length() + 1;
  for (size_t offset = 0; offset < windows; ++offset) {
    bool hit = true;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId s = p[i];
      if (!IsWildcard(s) && s != seq[offset + i]) {
        hit = false;
        break;
      }
    }
    if (hit) return 1.0;
  }
  return 0.0;
}

}  // namespace nmine
