#include "nmine/core/match.h"

#include <cassert>

#include "nmine/core/match_kernel.h"

namespace nmine {

// SegmentMatch is the semantics reference for the whole kernel stack: the
// SIMD kernels' exact re-evaluation path (detail::ExactWindowProduct) is
// this loop — same factor order, same zero short-circuit — which is what
// makes mined pattern sets bit-identical across --simd levels. Keep the
// two in lockstep; MatchKernelTest.SegmentMatchIsTheExactReference pins it.
double SegmentMatch(const CompatibilityMatrix& c, const Pattern& p,
                    const Sequence& seq, size_t offset) {
  assert(offset + p.length() <= seq.size());
  double match = 1.0;
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId true_sym = p[i];
    if (IsWildcard(true_sym)) continue;
    // Column(observed)[true] is the same entry as c(true, observed); the
    // column pointer keeps the inner load a single index.
    match *= c.Column(seq[offset + i])[static_cast<size_t>(true_sym)];
    if (match == 0.0) return 0.0;
  }
  return match;
}

double SequenceMatch(const CompatibilityMatrix& c, const Pattern& p,
                     const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  // Single-pattern entry to the process-wide match kernel (scalar or SIMD,
  // chosen by --simd / runtime dispatch). Prepared-set and scratch buffers
  // are reused per thread so steady-state calls allocate nothing.
  thread_local PreparedPatternSet prep;
  thread_local MatchScratch scratch;
  prep.Prepare(c, p);
  double best = 0.0;
  ActiveMatchKernel().BestMatches(prep, seq, &scratch, &best);
  return best;
}

double SequenceSupport(const Pattern& p, const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  const size_t windows = seq.size() - p.length() + 1;
  for (size_t offset = 0; offset < windows; ++offset) {
    bool hit = true;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId s = p[i];
      if (!IsWildcard(s) && s != seq[offset + i]) {
        hit = false;
        break;
      }
    }
    if (hit) return 1.0;
  }
  return 0.0;
}

}  // namespace nmine
