#ifndef NMINE_CORE_MATRIX_IO_H_
#define NMINE_CORE_MATRIX_IO_H_

#include <optional>
#include <string>

#include "nmine/core/compatibility_matrix.h"

namespace nmine {

/// Text format for compatibility matrices, used by the CLI and handy for
/// experiments:
///
///   # comment lines and blank lines are ignored
///   m
///   C(d1,d1) C(d1,d2) ... C(d1,dm)     <- row-major: row = true symbol
///   ...
///   C(dm,d1) ...          C(dm,dm)
///
/// Reading validates shape and column-stochasticity.
///
/// Failure class of a matrix I/O operation. Callers branch on the code
/// (e.g. the CLI maps kNotStochastic to a dedicated hint about fixing
/// column sums) while `message` carries the human-readable detail.
enum class MatrixIoCode {
  kOk,
  kIoError,         // file missing / unreadable / short write
  kParseError,      // malformed text: bad size, counts, or numbers
  kNotStochastic,   // well-formed but columns do not sum to 1
};

struct MatrixIoResult {
  bool ok = true;
  MatrixIoCode code = MatrixIoCode::kOk;
  std::string message;
};

/// Parses a matrix from `text`. On failure returns nullopt and fills
/// `*error`.
std::optional<CompatibilityMatrix> ParseCompatibilityMatrix(
    const std::string& text, MatrixIoResult* error);

/// Reads a matrix file.
std::optional<CompatibilityMatrix> ReadCompatibilityMatrixFile(
    const std::string& path, MatrixIoResult* error);

/// Serializes `c` in the text format (6 significant digits).
std::string FormatCompatibilityMatrix(const CompatibilityMatrix& c);

/// Writes `c` to `path` (overwrites).
MatrixIoResult WriteCompatibilityMatrixFile(const std::string& path,
                                            const CompatibilityMatrix& c);

}  // namespace nmine

#endif  // NMINE_CORE_MATRIX_IO_H_
