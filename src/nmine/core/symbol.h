#ifndef NMINE_CORE_SYMBOL_H_
#define NMINE_CORE_SYMBOL_H_

#include <cstdint>

namespace nmine {

/// Identifier of a symbol in the alphabet Theta = {d_0, ..., d_{m-1}}.
/// Valid symbol ids are dense non-negative integers in [0, m).
using SymbolId = int32_t;

/// The eternal ("don't care") symbol `*` of Definition 3.2. It may appear at
/// interior positions of a Pattern but never in a Sequence, and never as the
/// first or last position of a Pattern.
inline constexpr SymbolId kWildcard = -1;

/// Returns true if `s` denotes the eternal symbol.
inline constexpr bool IsWildcard(SymbolId s) { return s == kWildcard; }

}  // namespace nmine

#endif  // NMINE_CORE_SYMBOL_H_
