#ifndef NMINE_CORE_MATCH_KERNEL_DETAIL_H_
#define NMINE_CORE_MATCH_KERNEL_DETAIL_H_

#include <cstddef>
#include <cstdint>

#include "nmine/core/symbol.h"

namespace nmine {
namespace detail {

// Plain-data views shared between the kernel dispatcher (match_kernel.cc)
// and the per-ISA translation units (match_kernel_avx2.cc / _neon.cc).
//
// The per-ISA files are compiled with wider instruction sets enabled
// (-mavx2), so they must not instantiate inline functions from the wider
// library: the linker could pick the ISA-flagged copy for the whole
// binary and leak vector encodings into the portable build. This header
// therefore carries raw pointers only; everything with a body lives in
// match_kernel.cc, which is compiled with baseline flags.

/// One pattern's sliding-window evaluation, prepared against one sequence.
///
/// Log-space screen: window w's screening score is
///   sum_t plane[term_rows[t] * plane_stride + w + term_offsets[t]]
/// (float adds of precomputed log-compatibility rows; -inf marks a zero
/// factor), or the same sum gathered straight from the log table when no
/// plane was built. Any window whose exact double product can exceed the
/// running best scores above ScreenThreshold(best, guard) — see the
/// guard-band derivation in DESIGN.md section 16 — so survivors are
/// re-derived with ExactWindowProduct and results stay bit-identical to
/// the scalar oracle.
struct WindowPlan {
  const float* plane = nullptr;          // SoA rows, one per plane symbol
  size_t plane_stride = 0;               // row length == sequence length
  const int32_t* term_rows = nullptr;    // plane row per non-wildcard pos
  const int32_t* term_offsets = nullptr; // window offset per such position
  const SymbolId* term_syms = nullptr;   // true symbol per such position
  size_t num_terms = 0;
  float guard = 0.0f;                    // screening guard band (log space)
  const SymbolId* seq = nullptr;         // the sequence (observed symbols)
  size_t pattern_length = 0;             // full length incl. wildcards
  // Column bases: column s of the double matrix is cols_base + s*m, row s
  // of the float log table is log_rows + s*m. Columns resolve lazily from
  // `seq` — screening leaves so few exact re-derivations that hoisting a
  // per-position column array costs more than it saves.
  const double* cols_base = nullptr;
  const float* log_rows = nullptr;
  size_t m = 0;                          // alphabet size (row/col stride)
};

/// The exact double product of window `w` — the same factors, in the same
/// order, with the same zero short-circuit as SegmentMatch (the semantics
/// reference). Every kernel funnels accepted windows through this.
double ExactWindowProduct(const WindowPlan& p, size_t w);

/// Float screening threshold for the current best: conservatively below
/// log(best) by `guard`, and -inf (screen nothing with a finite score)
/// when best is small enough that the exact product could be subnormal.
float ScreenThreshold(double best, float guard);

/// Max-over-windows exact match; the scalar reference loop.
double BestWindowsScalar(const WindowPlan& p, size_t windows);

/// Per-ISA window loops: 8 (AVX2) / 4 (NEON) windows advance per step
/// with a per-lane early-abandon test; candidates re-derive through
/// ExactWindowProduct. The Fused variant skips the plane and gathers
/// screening terms straight from the log table — the win for single
/// patterns, where a plane would cost as much as the match itself.
/// Defined only in their translation units — the dispatcher gates on
/// NMINE_HAVE_AVX2 / NMINE_HAVE_NEON.
double BestWindowsAvx2(const WindowPlan& p, size_t windows);
double BestWindowsFusedAvx2(const WindowPlan& p, size_t windows);
double BestWindowsNeon(const WindowPlan& p, size_t windows);

/// Gather-accelerated plane row fill: dst[j] = lrow[seq[j]] for j < n.
void PlaneRowAvx2(float* dst, const float* lrow, const SymbolId* seq,
                  size_t n);

/// Trie leaf runs: for j < count, best[idx[j]] gets
/// max(best[idx[j]], product * col[syms[j]]). One vector multiply per 4
/// children on AVX2; lane products are single IEEE multiplies, so results
/// are bit-identical to the scalar loop.
void LeafRunMaxAvx2(const double* col, double product, const SymbolId* syms,
                    const int32_t* idx, size_t count, double* best);

}  // namespace detail
}  // namespace nmine

#endif  // NMINE_CORE_MATCH_KERNEL_DETAIL_H_
