#include "nmine/core/match_kernel.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "nmine/core/match_kernel_detail.h"

#if defined(__x86_64__) || defined(__i386__)
// __builtin_cpu_supports reads CPUID; nothing to include.
#elif defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace nmine {
namespace detail {

double ExactWindowProduct(const WindowPlan& p, size_t w) {
  // Terms list the non-wildcard positions in ascending window offset, so
  // the factor order (and the zero short-circuit) is exactly
  // SegmentMatch's — wildcards contribute no factor there either.
  double match = 1.0;
  for (size_t t = 0; t < p.num_terms; ++t) {
    const double* col =
        p.cols_base +
        static_cast<size_t>(p.seq[w + static_cast<size_t>(
                                          p.term_offsets[t])]) *
            p.m;
    match *= col[static_cast<size_t>(p.term_syms[t])];
    if (match == 0.0) return 0.0;
  }
  return match;
}

float ScreenThreshold(double best, float guard) {
  // The guard-band argument (DESIGN.md section 16) needs every partial of
  // a winning exact product to be a normal double; entries are <= 1, so
  // partials only shrink, and requiring best itself to sit above 1e-290
  // keeps any product that could beat it out of the subnormal range.
  // Below that, screen nothing with a finite score (-inf still prunes
  // windows containing a zero factor, whose exact product is exactly 0).
  if (!(best >= 1e-290)) return -std::numeric_limits<float>::infinity();
  return static_cast<float>(std::log(best)) - guard;
}

double BestWindowsScalar(const WindowPlan& p, size_t windows) {
  // Two windows per iteration: each window's product is a dependent
  // multiply chain, so pairing two independent chains keeps the FPU fed.
  // Factor order per window is unchanged, and a lane that hits zero stays
  // zero through the remaining multiplies — same value, so results are
  // bit-identical to the one-window loop.
  double best = 0.0;
  size_t w = 0;
  for (; w + 2 <= windows; w += 2) {
    double m0 = 1.0;
    double m1 = 1.0;
    for (size_t t = 0; t < p.num_terms; ++t) {
      const size_t off = static_cast<size_t>(p.term_offsets[t]);
      const size_t sym = static_cast<size_t>(p.term_syms[t]);
      m0 *= (p.cols_base + static_cast<size_t>(p.seq[w + off]) * p.m)[sym];
      m1 *= (p.cols_base +
             static_cast<size_t>(p.seq[w + 1 + off]) * p.m)[sym];
      if (m0 == 0.0 && m1 == 0.0) break;
    }
    if (m0 > best) best = m0;
    if (m1 > best) best = m1;
  }
  for (; w < windows; ++w) {
    double match = ExactWindowProduct(p, w);
    if (match > best) best = match;
  }
  return best;
}

}  // namespace detail

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__) && defined(__linux__)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#elif defined(__aarch64__)
  f.neon = true;  // AdvSIMD is architecturally mandatory on AArch64.
#endif
  return f;
}

void PreparedPatternSet::Prepare(const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns) {
  matrix_ = &c;
  log_ = c.LogRows();
  plane_symbols_.clear();
  row_of_symbol_.assign(c.size(), -1);
  term_rows_.clear();
  term_offsets_.clear();
  term_syms_.clear();
  symbols_.clear();
  plans_.clear();
  plans_.reserve(patterns.size());
  for (const Pattern& p : patterns) AddPattern(p);
}

void PreparedPatternSet::Prepare(const CompatibilityMatrix& c,
                                 const Pattern& pattern) {
  matrix_ = &c;
  log_ = c.LogRows();
  plane_symbols_.clear();
  row_of_symbol_.assign(c.size(), -1);
  term_rows_.clear();
  term_offsets_.clear();
  term_syms_.clear();
  symbols_.clear();
  plans_.clear();
  AddPattern(pattern);
}

void PreparedPatternSet::AddPattern(const Pattern& p) {
  Plan plan;
  plan.first_term = static_cast<uint32_t>(term_rows_.size());
  plan.first_symbol = static_cast<uint32_t>(symbols_.size());
  plan.length = static_cast<uint32_t>(p.length());
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId sym = p[i];
    symbols_.push_back(sym);
    if (IsWildcard(sym)) continue;
    int32_t row = row_of_symbol_[static_cast<size_t>(sym)];
    if (row < 0) {
      row = static_cast<int32_t>(plane_symbols_.size());
      plane_symbols_.push_back(sym);
      row_of_symbol_[static_cast<size_t>(sym)] = row;
    }
    term_rows_.push_back(row);
    term_offsets_.push_back(static_cast<int32_t>(i));
    term_syms_.push_back(sym);
  }
  plan.num_terms = static_cast<uint32_t>(term_rows_.size()) - plan.first_term;
  // Guard band: |float screen - log(exact double product)| is bounded by
  // k(k+1) * max|log| * 2^-24 (per-term conversion + summation + the
  // log(best) conversion); (k+2)^2 at 2^-23 leaves a 2x margin. See
  // DESIGN.md section 16 for the derivation.
  float k = static_cast<float>(plan.num_terms) + 2.0f;
  plan.guard = k * k * log_.max_abs_log * 0x1p-23f + 1e-12f;
  plans_.push_back(plan);
}

namespace {

using PlaneRowFn = void (*)(float* dst, const float* lrow,
                            const SymbolId* seq, size_t n);

void PlaneRowScalar(float* dst, const float* lrow, const SymbolId* seq,
                    size_t n) {
  for (size_t j = 0; j < n; ++j) {
    dst[j] = lrow[static_cast<size_t>(seq[j])];
  }
}

/// Fills one plane row per distinct pattern symbol: row r holds
/// log C(plane_symbols[r], seq[j]) for every position j — the SoA layout
/// the vector window loops advance over with plain unaligned loads.
void BuildLogPlane(const PreparedPatternSet& prep, const Sequence& seq,
                   PlaneRowFn fill_row, std::vector<float>* plane) {
  const CompatibilityMatrix::LogView log = prep.log_view();
  const std::vector<SymbolId>& rows = prep.plane_symbols();
  const size_t n = seq.size();
  if (plane->size() < rows.size() * n) plane->resize(rows.size() * n);
  float* dst = plane->data();
  for (size_t r = 0; r < rows.size(); ++r, dst += n) {
    fill_row(dst, log.rows + static_cast<size_t>(rows[r]) * log.m,
             seq.data(), n);
  }
}

detail::WindowPlan MakeWindowPlan(const PreparedPatternSet& prep,
                                  const PreparedPatternSet::Plan& plan,
                                  const MatchScratch& scratch, size_t n) {
  const CompatibilityMatrix::LogView log = prep.log_view();
  detail::WindowPlan p;
  p.plane = scratch.plane.data();
  p.plane_stride = n;
  p.term_rows = prep.term_rows().data() + plan.first_term;
  p.term_offsets = prep.term_offsets().data() + plan.first_term;
  p.term_syms = prep.term_syms().data() + plan.first_term;
  p.num_terms = plan.num_terms;
  p.guard = plan.guard;
  p.pattern_length = plan.length;
  p.cols_base = prep.matrix().Column(0);
  p.log_rows = log.rows;
  p.m = log.m;
  return p;
}

using BestWindowsFn = double (*)(const detail::WindowPlan&, size_t);

/// Shared body of every kernel's BestMatches: build the log plane when
/// the chosen window loop wants one, then run the per-pattern loop. The
/// sequence pointer is wired into each WindowPlan so both the screening
/// gathers and the exact re-derivation resolve columns lazily.
void RunBestMatches(const PreparedPatternSet& prep, const Sequence& seq,
                    MatchScratch* scratch, BestWindowsFn best_windows,
                    PlaneRowFn fill_row, double* best) {
  if (fill_row != nullptr) {
    BuildLogPlane(prep, seq, fill_row, &scratch->plane);
  }
  const size_t n = seq.size();
  const std::vector<PreparedPatternSet::Plan>& plans = prep.plans();
  for (size_t i = 0; i < plans.size(); ++i) {
    if (n < plans[i].length) {
      best[i] = 0.0;
      continue;
    }
    detail::WindowPlan p = MakeWindowPlan(prep, plans[i], *scratch, n);
    p.seq = seq.data();
    best[i] = best_windows(p, n - plans[i].length + 1);
  }
}

class ScalarMatchKernel final : public MatchKernel {
 public:
  SimdLevel level() const override { return SimdLevel::kScalar; }

  void BestMatches(const PreparedPatternSet& prep, const Sequence& seq,
                   MatchScratch* scratch, double* best) const override {
    RunBestMatches(prep, seq, scratch, &detail::BestWindowsScalar,
                   /*fill_row=*/nullptr, best);
  }

  void LeafRunMax(const double* col, double product, const SymbolId* syms,
                  const int32_t* idx, size_t count,
                  double* best) const override {
    for (size_t j = 0; j < count; ++j) {
      double v = product * col[static_cast<size_t>(syms[j])];
      double& slot = best[static_cast<size_t>(idx[j])];
      if (v > slot) slot = v;
    }
  }
};

#if defined(NMINE_HAVE_AVX2)
class Avx2MatchKernel final : public MatchKernel {
 public:
  SimdLevel level() const override { return SimdLevel::kAvx2; }

  void BestMatches(const PreparedPatternSet& prep, const Sequence& seq,
                   MatchScratch* scratch, double* best) const override {
    // Single-pattern calls gather screening terms straight from the log
    // table: a plane would cost one table pass per row — as much work as
    // the match itself. Batches amortise the plane across patterns (its
    // row count is capped by the alphabet), so there it wins.
    if (prep.plans().size() == 1) {
      RunBestMatches(prep, seq, scratch, &detail::BestWindowsFusedAvx2,
                     /*fill_row=*/nullptr, best);
    } else {
      RunBestMatches(prep, seq, scratch, &detail::BestWindowsAvx2,
                     &detail::PlaneRowAvx2, best);
    }
  }

  void LeafRunMax(const double* col, double product, const SymbolId* syms,
                  const int32_t* idx, size_t count,
                  double* best) const override {
    detail::LeafRunMaxAvx2(col, product, syms, idx, count, best);
  }
};
#endif  // NMINE_HAVE_AVX2

#if defined(NMINE_HAVE_NEON)
class NeonMatchKernel final : public MatchKernel {
 public:
  SimdLevel level() const override { return SimdLevel::kNeon; }

  void BestMatches(const PreparedPatternSet& prep, const Sequence& seq,
                   MatchScratch* scratch, double* best) const override {
    RunBestMatches(prep, seq, scratch, &detail::BestWindowsNeon,
                   &PlaneRowScalar, best);
  }

  void LeafRunMax(const double* col, double product, const SymbolId* syms,
                  const int32_t* idx, size_t count,
                  double* best) const override {
    // No gather on NEON; the scalar loop is already bit-identical.
    for (size_t j = 0; j < count; ++j) {
      double v = product * col[static_cast<size_t>(syms[j])];
      double& slot = best[static_cast<size_t>(idx[j])];
      if (v > slot) slot = v;
    }
  }
};
#endif  // NMINE_HAVE_NEON

std::atomic<const MatchKernel*>& ActiveKernelSlot() {
  static std::atomic<const MatchKernel*> slot{nullptr};
  return slot;
}

}  // namespace

const MatchKernel* GetMatchKernel(SimdLevel level) {
  static const ScalarMatchKernel scalar;
  switch (level) {
    case SimdLevel::kScalar:
      return &scalar;
    case SimdLevel::kAvx2: {
#if defined(NMINE_HAVE_AVX2)
      static const Avx2MatchKernel avx2;
      return &avx2;
#else
      return nullptr;
#endif
    }
    case SimdLevel::kNeon: {
#if defined(NMINE_HAVE_NEON)
      static const NeonMatchKernel neon;
      return &neon;
#else
      return nullptr;
#endif
    }
  }
  return nullptr;
}

bool KernelCompiled(SimdLevel level) {
  return GetMatchKernel(level) != nullptr;
}

namespace {

bool LevelUsable(SimdLevel level, const CpuFeatures& features) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return features.avx2 && KernelCompiled(SimdLevel::kAvx2);
    case SimdLevel::kNeon:
      return features.neon && KernelCompiled(SimdLevel::kNeon);
  }
  return false;
}

}  // namespace

bool ResolveSimdLevel(const std::string& flag, const CpuFeatures& features,
                      SimdLevel* out, std::string* error) {
  if (flag.empty() || flag == "auto") {
    // Widest first; never an ISA the host lacks or the build omitted.
    if (LevelUsable(SimdLevel::kAvx2, features)) {
      *out = SimdLevel::kAvx2;
    } else if (LevelUsable(SimdLevel::kNeon, features)) {
      *out = SimdLevel::kNeon;
    } else {
      *out = SimdLevel::kScalar;
    }
    return true;
  }
  SimdLevel requested;
  if (flag == "scalar") {
    requested = SimdLevel::kScalar;
  } else if (flag == "avx2") {
    requested = SimdLevel::kAvx2;
  } else if (flag == "neon") {
    requested = SimdLevel::kNeon;
  } else {
    if (error != nullptr) {
      *error = "bad --simd '" + flag + "' (want auto|avx2|neon|scalar)";
    }
    return false;
  }
  if (!KernelCompiled(requested)) {
    if (error != nullptr) {
      *error = "--simd=" + flag + ": this build has no " + flag + " kernel";
    }
    return false;
  }
  if (!LevelUsable(requested, features)) {
    if (error != nullptr) {
      *error = "--simd=" + flag + ": the host CPU does not support " + flag;
    }
    return false;
  }
  *out = requested;
  return true;
}

bool SetActiveMatchKernel(SimdLevel level, std::string* error) {
  // Re-verify against the REAL host here: mocked CpuFeatures flow through
  // ResolveSimdLevel only, so an unsupported kernel can never be armed.
  if (!KernelCompiled(level) || !LevelUsable(level, DetectCpuFeatures())) {
    if (error != nullptr) {
      *error = std::string("match kernel '") + SimdLevelName(level) +
               "' is unavailable on this host";
    }
    return false;
  }
  ActiveKernelSlot().store(GetMatchKernel(level), std::memory_order_release);
  return true;
}

const MatchKernel& ActiveMatchKernel() {
  const MatchKernel* kernel =
      ActiveKernelSlot().load(std::memory_order_acquire);
  if (kernel == nullptr) {
    // First use without an explicit --simd: arm the widest supported
    // kernel ("auto"). Bit-identity across kernels makes this safe.
    SimdLevel level = SimdLevel::kScalar;
    ResolveSimdLevel("auto", DetectCpuFeatures(), &level, nullptr);
    kernel = GetMatchKernel(level);
    const MatchKernel* expected = nullptr;
    ActiveKernelSlot().compare_exchange_strong(expected, kernel,
                                               std::memory_order_acq_rel);
    kernel = ActiveKernelSlot().load(std::memory_order_acquire);
  }
  return *kernel;
}

const char* ActiveMatchKernelName() { return ActiveMatchKernel().name(); }

}  // namespace nmine
