// NEON window loop. Compiled only on AArch64 (AdvSIMD is baseline there,
// so no special flags are needed), and kept to free functions for
// symmetry with the AVX2 translation unit — see match_kernel_detail.h.
#if defined(NMINE_HAVE_NEON)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "nmine/core/match_kernel_detail.h"

namespace nmine {
namespace detail {

double BestWindowsNeon(const WindowPlan& p, size_t windows) {
  double best = 0.0;
  float thr = ScreenThreshold(best, p.guard);
  size_t wb = 0;
  for (; wb + 4 <= windows; wb += 4) {
    // Screening sums for 4 consecutive windows (see BestWindowsAvx2 for
    // the layout argument; NEON lanes are 4-wide floats).
    const float32x4_t thrv = vdupq_n_f32(thr);
    float32x4_t sum = vdupq_n_f32(0.0f);
    bool alive = true;
    for (size_t t = 0; t < p.num_terms; ++t) {
      const float* row =
          p.plane + static_cast<size_t>(p.term_rows[t]) * p.plane_stride;
      sum = vaddq_f32(
          sum, vld1q_f32(row + wb + static_cast<size_t>(p.term_offsets[t])));
      // Early abandon: entries are probabilities <= 1, so the sums are
      // monotone non-increasing. Test every 4th term.
      if ((t & 3u) == 3u && vmaxvq_u32(vcgtq_f32(sum, thrv)) == 0) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    uint32x4_t gt = vcgtq_f32(sum, thrv);
    uint32_t lanes[4];
    vst1q_u32(lanes, gt);
    // Ascending window order keeps the running-best trajectory (and all
    // screening decisions) identical to the scalar kernel.
    for (size_t lane = 0; lane < 4; ++lane) {
      if (lanes[lane] == 0) continue;
      double match = ExactWindowProduct(p, wb + lane);
      if (match > best) {
        best = match;
        thr = ScreenThreshold(best, p.guard);
      }
    }
  }
  for (; wb < windows; ++wb) {
    double match = ExactWindowProduct(p, wb);
    if (match > best) best = match;
  }
  return best;
}

}  // namespace detail
}  // namespace nmine

#endif  // NMINE_HAVE_NEON
