#ifndef NMINE_CORE_MATCH_H_
#define NMINE_CORE_MATCH_H_

#include <cstddef>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"
#include "nmine/core/sequence.h"

namespace nmine {

/// Match of pattern `p` in the length-l segment of `seq` starting at
/// `offset` (Definition 3.5): the product of C(p[i], seq[offset + i]).
/// Precondition: offset + p.length() <= seq.size().
double SegmentMatch(const CompatibilityMatrix& c, const Pattern& p,
                    const Sequence& seq, size_t offset);

/// Match of pattern `p` in sequence `seq` (Definition 3.6): the maximum
/// segment match over all sliding-window positions. Returns 0 when the
/// sequence is shorter than the pattern. The inner product short-circuits
/// on a zero factor (Algorithm 4.2 behaviour), which makes the common
/// sparse-matrix case run in near-linear time.
double SequenceMatch(const CompatibilityMatrix& c, const Pattern& p,
                     const Sequence& seq);

/// Classical (binary) support of `p` in `seq`: 1.0 if some window of `seq`
/// matches `p` exactly (wildcards match anything), else 0.0. Identical to
/// SequenceMatch under the identity matrix; provided separately so the
/// support model does not pay for probability arithmetic.
double SequenceSupport(const Pattern& p, const Sequence& seq);

}  // namespace nmine

#endif  // NMINE_CORE_MATCH_H_
