#ifndef NMINE_CORE_STATUS_H_
#define NMINE_CORE_STATUS_H_

#include <string>
#include <utility>

namespace nmine {

/// Failure taxonomy for the mining pipeline. The distinction that matters
/// operationally is transient vs. permanent: kUnavailable failures may
/// succeed on retry (a concurrently-rewritten database file, a flaky
/// volume), while the others are stable properties of the input and
/// retrying cannot help.
enum class StatusCode {
  kOk = 0,
  kNotFound,            // the referenced file does not exist
  kUnavailable,         // transient I/O failure; safe to retry
  kDataLoss,            // corruption: bad magic, overlong varint, garbage
  kInvalidArgument,     // malformed configuration or parameters
  kFailedPrecondition,  // state mismatch (e.g. stale checkpoint)
  kInternal,            // bug: should never surface to users
  kCancelled,           // the operator requested cooperative cancellation
  kDeadlineExceeded,    // the run's monotonic deadline passed
  kResourceExhausted,   // the memory-budget degradation ladder ran out
};

const char* ToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
/// Every mining answer is either correct or carries one of these — partial
/// scans are never silently consumed (the failure mode border collapsing
/// cannot detect, since each Phase-3 probe scan is trusted as ground
/// truth).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    return Status(code, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when a later retry of the same operation could succeed.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "UNAVAILABLE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace nmine

#endif  // NMINE_CORE_STATUS_H_
