#ifndef NMINE_CORE_CHECK_H_
#define NMINE_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant check that survives NDEBUG. Unlike assert(), a violated
/// NMINE_CHECK is a clean diagnostic-and-abort in Release builds instead of
/// undefined behavior further down the line. Use it for programmer
/// contracts; externally-supplied input (files, CLI flags) must instead be
/// rejected with a typed error (Status / MatrixIoResult) so callers can
/// recover.
#define NMINE_CHECK(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "nmine: check failed at %s:%d: %s\n",    \
                   __FILE__, __LINE__, msg);                        \
      std::abort();                                                 \
    }                                                               \
  } while (0)

#endif  // NMINE_CORE_CHECK_H_
