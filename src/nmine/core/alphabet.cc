#include "nmine/core/alphabet.h"

#include <cassert>
#include <cstdio>

namespace nmine {
namespace {

const std::string kWildcardName = "*";

}  // namespace

Alphabet::Alphabet(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    Intern(name);
  }
}

Alphabet Alphabet::Anonymous(size_t m) {
  std::vector<std::string> names;
  names.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    names.push_back("d" + std::to_string(i + 1));
  }
  return Alphabet(names);
}

SymbolId Alphabet::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> Alphabet::Id(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& Alphabet::Name(SymbolId id) const {
  if (IsWildcard(id)) {
    return kWildcardName;
  }
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace nmine
