#include "nmine/core/status.h"

namespace nmine {

const char* ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = nmine::ToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nmine
