#ifndef NMINE_CORE_ALPHABET_H_
#define NMINE_CORE_ALPHABET_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nmine/core/symbol.h"

namespace nmine {

/// Bidirectional mapping between human-readable symbol names and dense
/// SymbolIds. An Alphabet is immutable once built except through Intern().
///
/// Example:
///   Alphabet a({"A", "C", "G", "T"});
///   a.Id("G");            // 2
///   a.Name(0);            // "A"
class Alphabet {
 public:
  /// Creates an empty alphabet.
  Alphabet() = default;

  /// Creates an alphabet from `names`. Duplicate names are rejected (the
  /// constructor keeps the first occurrence and ignores repeats).
  explicit Alphabet(const std::vector<std::string>& names);

  /// Creates the anonymous alphabet {d1, d2, ..., dm} used throughout the
  /// paper's examples (note: names are 1-based, ids are 0-based).
  static Alphabet Anonymous(size_t m);

  Alphabet(const Alphabet&) = default;
  Alphabet& operator=(const Alphabet&) = default;
  Alphabet(Alphabet&&) = default;
  Alphabet& operator=(Alphabet&&) = default;

  /// Returns the id for `name`, interning it if new.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name`, or std::nullopt if unknown.
  std::optional<SymbolId> Id(std::string_view name) const;

  /// Returns the name of `id`. `id` must be a valid symbol id or kWildcard
  /// (rendered as "*").
  const std::string& Name(SymbolId id) const;

  /// Number of distinct symbols m.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace nmine

#endif  // NMINE_CORE_ALPHABET_H_
