#include "nmine/core/pattern.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace nmine {
namespace {

size_t CountSymbols(const std::vector<SymbolId>& body) {
  size_t k = 0;
  for (SymbolId s : body) {
    if (!IsWildcard(s)) ++k;
  }
  return k;
}

}  // namespace

Pattern::Pattern(std::vector<SymbolId> body)
    : body_(std::move(body)), num_symbols_(CountSymbols(body_)) {
  assert(IsValidBody(body_));
}

Pattern::Pattern(std::initializer_list<SymbolId> body)
    : Pattern(std::vector<SymbolId>(body)) {}

bool Pattern::IsValidBody(const std::vector<SymbolId>& body) {
  if (body.empty()) return false;
  if (IsWildcard(body.front()) || IsWildcard(body.back())) return false;
  for (SymbolId s : body) {
    if (!IsWildcard(s) && s < 0) return false;
  }
  return true;
}

std::optional<Pattern> Pattern::Trimmed(std::vector<SymbolId> body) {
  size_t begin = 0;
  size_t end = body.size();
  while (begin < end && IsWildcard(body[begin])) ++begin;
  while (end > begin && IsWildcard(body[end - 1])) --end;
  if (begin == end) return std::nullopt;
  std::vector<SymbolId> trimmed(body.begin() + static_cast<long>(begin),
                                body.begin() + static_cast<long>(end));
  if (!IsValidBody(trimmed)) return std::nullopt;
  return Pattern(std::move(trimmed));
}

std::optional<Pattern> Pattern::Parse(std::string_view text,
                                      const Alphabet& alphabet) {
  std::istringstream in{std::string(text)};
  std::vector<SymbolId> body;
  std::string token;
  while (in >> token) {
    if (token == "*") {
      body.push_back(kWildcard);
    } else {
      std::optional<SymbolId> id = alphabet.Id(token);
      if (!id.has_value()) return std::nullopt;
      body.push_back(*id);
    }
  }
  if (!IsValidBody(body)) return std::nullopt;
  return Pattern(std::move(body));
}

bool Pattern::IsSubpatternOf(const Pattern& other) const {
  if (length() > other.length()) return false;
  const size_t l = length();
  const size_t max_offset = other.length() - l;
  for (size_t j = 0; j <= max_offset; ++j) {
    bool ok = true;
    for (size_t i = 0; i < l; ++i) {
      SymbolId mine = body_[i];
      if (!IsWildcard(mine) && mine != other.body_[i + j]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool Pattern::IsImmediateSubpatternOf(const Pattern& other) const {
  return NumSymbols() + 1 == other.NumSymbols() && IsSubpatternOf(other);
}

std::vector<Pattern> Pattern::ImmediateSubpatterns() const {
  std::vector<Pattern> result;
  if (NumSymbols() <= 1) return result;
  for (size_t p = 0; p < body_.size(); ++p) {
    if (IsWildcard(body_[p])) continue;
    std::vector<SymbolId> body = body_;
    body[p] = kWildcard;
    std::optional<Pattern> sub = Trimmed(std::move(body));
    if (sub.has_value() &&
        std::find(result.begin(), result.end(), *sub) == result.end()) {
      result.push_back(std::move(*sub));
    }
  }
  return result;
}

std::string Pattern::ToString(const Alphabet& alphabet) const {
  std::string out;
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ' ';
    out += alphabet.Name(body_[i]);
  }
  return out;
}

std::string Pattern::ToString() const {
  std::string out;
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ' ';
    out += IsWildcard(body_[i]) ? "*" : std::to_string(body_[i]);
  }
  return out;
}

size_t Pattern::Hash() const {
  size_t h = 1469598103934665603ull;  // FNV offset basis
  for (SymbolId s : body_) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(s));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace nmine
