#ifndef NMINE_CORE_COLUMN_INDEX_H_
#define NMINE_CORE_COLUMN_INDEX_H_

#include <cstddef>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/sequence.h"

namespace nmine {

/// Per-position compatibility-column pointers for one sequence.
///
/// Every sliding window that crosses position j reads factors from the
/// same column C(., seq[j]), so the column pointer is hoisted out of the
/// innermost product once per sequence: Build() resolves cols()[j] ==
/// c.Column(seq[j]). Short sequences stay on an internal stack buffer;
/// longer ones spill to a heap vector whose capacity is kept across
/// Build() calls, so a scan-loop scratch instance allocates at most once.
///
/// Shared by SequenceMatch, PatternTrie::BestMatches, the batch counters,
/// and the match kernels' exact re-evaluation path.
class ColumnIndex {
 public:
  ColumnIndex() = default;
  // The stack buffer makes the type address-sensitive; scratch owners keep
  // one instance per worker instead of copying it around.
  ColumnIndex(const ColumnIndex&) = delete;
  ColumnIndex& operator=(const ColumnIndex&) = delete;

  void Build(const CompatibilityMatrix& c, const Sequence& seq) {
    size_ = seq.size();
    const double** cols = stack_;
    if (size_ > kStackPositions) {
      if (heap_.size() < size_) heap_.resize(size_);
      cols = heap_.data();
    }
    for (size_t j = 0; j < size_; ++j) {
      cols[j] = c.Column(seq[j]);
    }
    cols_ = cols;
  }

  /// cols()[j] is the column for seq[j]; valid until the next Build() and
  /// only as long as the matrix outlives this index.
  const double* const* cols() const { return cols_; }
  size_t size() const { return size_; }

 private:
  static constexpr size_t kStackPositions = 512;
  const double* stack_[kStackPositions];
  std::vector<const double*> heap_;
  const double* const* cols_ = nullptr;
  size_t size_ = 0;
};

}  // namespace nmine

#endif  // NMINE_CORE_COLUMN_INDEX_H_
