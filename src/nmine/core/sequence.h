#ifndef NMINE_CORE_SEQUENCE_H_
#define NMINE_CORE_SEQUENCE_H_

#include <cstdint>
#include <vector>

#include "nmine/core/symbol.h"

namespace nmine {

/// A sequence of observed symbols (Definition 3.1). Unlike a Pattern, a
/// Sequence never contains the eternal symbol.
using Sequence = std::vector<SymbolId>;

/// Identifier of a sequence within a database.
using SequenceId = int64_t;

/// One (Sid, S) tuple of a sequence database (Definition 3.1).
struct SequenceRecord {
  SequenceId id = 0;
  Sequence symbols;
};

}  // namespace nmine

#endif  // NMINE_CORE_SEQUENCE_H_
