#include "nmine/core/metric.h"

namespace nmine {

const char* ToString(Metric metric) {
  switch (metric) {
    case Metric::kSupport:
      return "support";
    case Metric::kMatch:
      return "match";
  }
  return "unknown";
}

}  // namespace nmine
