#include "nmine/core/matrix_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nmine {
namespace {

/// Strips comments and blank lines, returning whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream words(line);
    std::string token;
    while (words >> token) {
      tokens.push_back(token);
    }
  }
  return tokens;
}

}  // namespace

std::optional<CompatibilityMatrix> ParseCompatibilityMatrix(
    const std::string& text, MatrixIoResult* error) {
  std::vector<std::string> tokens = Tokenize(text);
  auto fail = [error](MatrixIoCode code,
                      std::string msg) -> std::optional<CompatibilityMatrix> {
    if (error != nullptr) {
      *error = {false, code, std::move(msg)};
    }
    return std::nullopt;
  };
  if (tokens.empty()) {
    return fail(MatrixIoCode::kParseError, "empty matrix file");
  }
  char* end = nullptr;
  unsigned long parsed_m = std::strtoul(tokens[0].c_str(), &end, 10);
  if (end == tokens[0].c_str() || *end != '\0' || parsed_m < 1) {
    return fail(MatrixIoCode::kParseError,
                "first token must be the alphabet size m, got '" + tokens[0] +
                    "'");
  }
  size_t m = parsed_m;
  if (tokens.size() != 1 + m * m) {
    return fail(MatrixIoCode::kParseError,
                "expected " + std::to_string(m * m) + " entries for m = " +
                    std::to_string(m) + ", found " +
                    std::to_string(tokens.size() - 1));
  }
  CompatibilityMatrix c(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const std::string& token = tokens[1 + i * m + j];
      char* num_end = nullptr;
      double value = std::strtod(token.c_str(), &num_end);
      if (num_end == token.c_str() || *num_end != '\0') {
        return fail(MatrixIoCode::kParseError,
                    "bad number '" + token + "' at row " +
                        std::to_string(i + 1) + ", column " +
                        std::to_string(j + 1));
      }
      c.Set(static_cast<SymbolId>(i), static_cast<SymbolId>(j), value);
    }
  }
  MatrixValidation v = c.Validate();
  if (!v.ok) {
    return fail(MatrixIoCode::kNotStochastic,
                "matrix is not column-stochastic: " + v.message);
  }
  if (error != nullptr) {
    *error = {true, MatrixIoCode::kOk, ""};
  }
  return c;
}

std::optional<CompatibilityMatrix> ReadCompatibilityMatrixFile(
    const std::string& path, MatrixIoResult* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = {false, MatrixIoCode::kIoError,
                "cannot open for reading: " + path};
    }
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ParseCompatibilityMatrix(text, error);
}

std::string FormatCompatibilityMatrix(const CompatibilityMatrix& c) {
  std::string out = std::to_string(c.size()) + "\n";
  char buf[32];
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t j = 0; j < c.size(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.6g",
                    c(static_cast<SymbolId>(i), static_cast<SymbolId>(j)));
      if (j > 0) out += ' ';
      out += buf;
    }
    out += '\n';
  }
  return out;
}

MatrixIoResult WriteCompatibilityMatrixFile(const std::string& path,
                                            const CompatibilityMatrix& c) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return {false, MatrixIoCode::kIoError, "cannot open for writing: " + path};
  }
  out << FormatCompatibilityMatrix(c);
  if (!out) {
    return {false, MatrixIoCode::kIoError, "write failed: " + path};
  }
  return {true, MatrixIoCode::kOk, ""};
}

}  // namespace nmine
