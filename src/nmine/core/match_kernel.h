#ifndef NMINE_CORE_MATCH_KERNEL_H_
#define NMINE_CORE_MATCH_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nmine/core/column_index.h"
#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"
#include "nmine/core/sequence.h"
#include "nmine/core/symbol.h"

namespace nmine {

/// The instruction-set tiers a match kernel can be built for. kScalar is
/// always available and is the semantics reference: every wider kernel
/// must produce bit-identical match values (it screens windows in log
/// space and re-derives survivors with the exact scalar product).
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "scalar", "avx2", "neon" — static storage (safe for RunStatusBoard).
const char* SimdLevelName(SimdLevel level);

/// Vector features of a host, as probed (DetectCpuFeatures) or mocked
/// (dispatch unit tests).
struct CpuFeatures {
  bool avx2 = false;
  bool neon = false;
};

/// Probes the running CPU: CPUID-backed __builtin_cpu_supports on x86,
/// HWCAP on AArch64 Linux.
CpuFeatures DetectCpuFeatures();

/// True if this build contains a kernel for `level` (per-ISA translation
/// units are only compiled on matching architectures).
bool KernelCompiled(SimdLevel level);

/// Resolves a --simd flag value ("auto", "scalar", "avx2", "neon")
/// against `features`: "auto" picks the widest kernel that is both
/// compiled in and supported by `features` (never an ISA the host lacks);
/// an explicit ISA request fails with a diagnostic when unavailable.
/// Returns false and sets *error on an unknown value or an unsatisfiable
/// request.
bool ResolveSimdLevel(const std::string& flag, const CpuFeatures& features,
                      SimdLevel* out, std::string* error);

/// A batch of patterns prepared for kernel evaluation against one
/// compatibility matrix: per-pattern log-probability rows are resolved to
/// rows of a shared SoA "log plane" (one row per distinct pattern symbol,
/// filled per sequence), and each pattern gets a screening guard band
/// derived from the matrix's largest |log| entry. Preparation does no
/// logarithm math — the float log table is cached inside the matrix.
///
/// The prepared set borrows the matrix; it must outlive the set and must
/// not be Set() while kernels are running (same contract as the sparse
/// column index).
class PreparedPatternSet {
 public:
  PreparedPatternSet() = default;

  /// Rebuilds the set in place (buffers are reused across calls).
  void Prepare(const CompatibilityMatrix& c,
               const std::vector<Pattern>& patterns);
  /// Single-pattern variant for SequenceMatch-style call sites.
  void Prepare(const CompatibilityMatrix& c, const Pattern& pattern);

  size_t num_patterns() const { return plans_.size(); }
  const CompatibilityMatrix& matrix() const { return *matrix_; }
  CompatibilityMatrix::LogView log_view() const { return log_; }

  struct Plan {
    uint32_t first_term = 0;    // into term_rows()/term_offsets()
    uint32_t num_terms = 0;     // non-wildcard positions
    uint32_t first_symbol = 0;  // into symbols()
    uint32_t length = 0;        // full pattern length incl. wildcards
    float guard = 0.0f;         // log-space screening guard band
  };
  const std::vector<Plan>& plans() const { return plans_; }

  /// Distinct non-wildcard symbols across the batch, in first-seen order;
  /// row r of a per-sequence log plane belongs to plane_symbols()[r].
  const std::vector<SymbolId>& plane_symbols() const {
    return plane_symbols_;
  }
  const std::vector<int32_t>& term_rows() const { return term_rows_; }
  const std::vector<int32_t>& term_offsets() const { return term_offsets_; }
  /// True symbol per term — the fused screening loop and the exact
  /// re-derivation index matrix rows/columns with these directly.
  const std::vector<SymbolId>& term_syms() const { return term_syms_; }
  /// Concatenated full pattern bodies (wildcards included), indexed by
  /// Plan::first_symbol — the exact re-evaluation path walks these.
  const std::vector<SymbolId>& symbols() const { return symbols_; }

 private:
  void AddPattern(const Pattern& p);

  const CompatibilityMatrix* matrix_ = nullptr;
  CompatibilityMatrix::LogView log_;
  std::vector<SymbolId> plane_symbols_;
  std::vector<int32_t> row_of_symbol_;  // symbol id -> plane row, -1 unset
  std::vector<int32_t> term_rows_;
  std::vector<int32_t> term_offsets_;
  std::vector<SymbolId> term_syms_;
  std::vector<SymbolId> symbols_;
  std::vector<Plan> plans_;
};

/// Per-worker mutable state for kernel evaluation. Reused across
/// sequences so the only steady-state allocations are capacity growth.
struct MatchScratch {
  ColumnIndex cols;          // exact re-evaluation path
  std::vector<float> plane;  // SoA log plane (vector kernels only)
};

/// A match-evaluation strategy selected once per process (runtime ISA
/// dispatch). All kernels compute Definition 3.6 exactly: mined pattern
/// sets and match values are bit-identical across kernels at any thread
/// count.
class MatchKernel {
 public:
  virtual ~MatchKernel() = default;

  virtual SimdLevel level() const = 0;
  const char* name() const { return SimdLevelName(level()); }

  /// best[i] = match of prepared pattern i in `seq` (max over sliding
  /// windows; 0 when the sequence is shorter than the pattern). Every
  /// entry of `best` (size prep.num_patterns()) is overwritten.
  virtual void BestMatches(const PreparedPatternSet& prep,
                           const Sequence& seq, MatchScratch* scratch,
                           double* best) const = 0;

  /// Trie leaf runs: for j < count, best[idx[j]] gets
  /// max(best[idx[j]], product * col[syms[j]]). `syms` must be wildcard
  /// free (leaf edges are final pattern positions, which cannot be `*`).
  virtual void LeafRunMax(const double* col, double product,
                          const SymbolId* syms, const int32_t* idx,
                          size_t count, double* best) const = 0;
};

/// The kernel for `level`, or nullptr when this build lacks it.
const MatchKernel* GetMatchKernel(SimdLevel level);

/// Installs the process-wide kernel used by SequenceMatch and the batch
/// counters. Verifies the level is compiled in AND supported by the real
/// host (mock features never reach this); returns false with *error
/// otherwise. Call once at startup, before mining threads exist.
bool SetActiveMatchKernel(SimdLevel level, std::string* error);

/// The process-wide kernel: the widest supported one until
/// SetActiveMatchKernel overrides it.
const MatchKernel& ActiveMatchKernel();
const char* ActiveMatchKernelName();

}  // namespace nmine

#endif  // NMINE_CORE_MATCH_KERNEL_H_
