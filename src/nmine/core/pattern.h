#ifndef NMINE_CORE_PATTERN_H_
#define NMINE_CORE_PATTERN_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nmine/core/alphabet.h"
#include "nmine/core/symbol.h"

namespace nmine {

/// A sequential pattern (Definition 3.2): an ordered list of symbols, each
/// either a symbol of the alphabet or the eternal symbol `*` (kWildcard).
/// Invariants: non-empty; neither the first nor the last position is `*`.
///
/// Terminology (as in the paper):
///  * length  — total number of positions, including `*`;
///  * k-pattern — a pattern with k non-eternal symbols (NumSymbols() == k).
class Pattern {
 public:
  /// Creates an empty (invalid) pattern; usable only as a placeholder.
  Pattern() = default;

  /// Creates a pattern from `body`. Precondition: IsValidBody(body).
  explicit Pattern(std::vector<SymbolId> body);
  Pattern(std::initializer_list<SymbolId> body);

  /// True if `body` is non-empty, has non-`*` endpoints, and every non-`*`
  /// entry is a non-negative symbol id.
  static bool IsValidBody(const std::vector<SymbolId>& body);

  /// Builds a pattern from `body` after stripping leading/trailing
  /// wildcards. Returns nullopt if nothing remains.
  static std::optional<Pattern> Trimmed(std::vector<SymbolId> body);

  /// Parses a whitespace-separated pattern such as "C * * C H" against
  /// `alphabet` ("*" is the eternal symbol). Returns nullopt on unknown
  /// names or invalid shape.
  static std::optional<Pattern> Parse(std::string_view text,
                                      const Alphabet& alphabet);

  Pattern(const Pattern&) = default;
  Pattern& operator=(const Pattern&) = default;
  Pattern(Pattern&&) = default;
  Pattern& operator=(Pattern&&) = default;

  /// Total number of positions l (including eternal symbols).
  size_t length() const { return body_.size(); }

  /// Number of non-eternal symbols k (the pattern's level in the lattice).
  size_t NumSymbols() const { return num_symbols_; }

  /// True for default-constructed placeholders.
  bool empty() const { return body_.empty(); }

  SymbolId operator[](size_t i) const { return body_[i]; }
  const std::vector<SymbolId>& body() const { return body_; }

  /// Definition 3.3: this pattern P is a subpattern of `other` (P') if P can
  /// be aligned at some offset inside P' such that every position of P is
  /// either `*` or equals the corresponding position of P'. Every pattern is
  /// a subpattern of itself.
  bool IsSubpatternOf(const Pattern& other) const;

  /// True if this is a subpattern of `other` with exactly one fewer
  /// non-eternal symbol (an edge of the lattice).
  bool IsImmediateSubpatternOf(const Pattern& other) const;

  /// All distinct immediate subpatterns: each obtained by deleting one
  /// non-eternal symbol (replacing an interior one with `*`, or dropping an
  /// endpoint together with adjacent wildcards). Empty for 1-patterns.
  std::vector<Pattern> ImmediateSubpatterns() const;

  /// Renders using `alphabet` names, e.g. "d1 * d3".
  std::string ToString(const Alphabet& alphabet) const;

  /// Renders using raw ids, e.g. "0 * 2".
  std::string ToString() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.body_ == b.body_;
  }
  friend bool operator!=(const Pattern& a, const Pattern& b) {
    return !(a == b);
  }

  /// Deterministic ordering (by length, then lexicographic); used to make
  /// mining output stable.
  friend bool operator<(const Pattern& a, const Pattern& b) {
    if (a.body_.size() != b.body_.size())
      return a.body_.size() < b.body_.size();
    return a.body_ < b.body_;
  }

  /// FNV-1a style hash over the body.
  size_t Hash() const;

 private:
  std::vector<SymbolId> body_;
  size_t num_symbols_ = 0;
};

/// Hash functor for unordered containers keyed by Pattern.
struct PatternHash {
  size_t operator()(const Pattern& p) const { return p.Hash(); }
};

}  // namespace nmine

#endif  // NMINE_CORE_PATTERN_H_
