// AVX2 window loop and trie leaf-run kernel. This translation unit is
// compiled with -mavx2 (see src/CMakeLists.txt) and must therefore define
// ONLY these free functions — no inline library instantiations that the
// linker could pick for the portable build (see match_kernel_detail.h).
#if defined(NMINE_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "nmine/core/match_kernel_detail.h"

namespace nmine {
namespace detail {
namespace {

// Full-mask gathers with a zeroed source. The plain _mm256_i32gather_*
// intrinsics route through _mm256_undefined_*, which GCC flags with a
// maybe-uninitialized warning on every build; the masked forms encode to
// the same vgatherd instruction.
inline __m256 GatherPs(const float* base, __m256i idx) {
  return _mm256_mask_i32gather_ps(
      _mm256_setzero_ps(), base, idx,
      _mm256_castsi256_ps(_mm256_set1_epi32(-1)), 4);
}

inline __m256d GatherPd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), sizeof(double));
}

}  // namespace

double BestWindowsAvx2(const WindowPlan& p, size_t windows) {
  double best = 0.0;
  float thr = ScreenThreshold(best, p.guard);
  size_t wb = 0;
  for (; wb + 8 <= windows; wb += 8) {
    // Screening sums for 8 consecutive windows: each term is one
    // unaligned load from a plane row (consecutive windows read
    // consecutive plane positions — the SoA payoff, no gathers).
    const __m256 thrv = _mm256_set1_ps(thr);
    __m256 sum = _mm256_setzero_ps();
    bool alive = true;
    for (size_t t = 0; t < p.num_terms; ++t) {
      const float* row =
          p.plane + static_cast<size_t>(p.term_rows[t]) * p.plane_stride;
      sum = _mm256_add_ps(
          sum, _mm256_loadu_ps(row + wb +
                               static_cast<size_t>(p.term_offsets[t])));
      // Early abandon: matrix entries are probabilities <= 1, so every
      // plane value is <= 0 and the sums are monotone non-increasing —
      // once all 8 lanes sit at or below the screen threshold the block
      // is dead. Test every 4th term to amortise the movemask.
      if ((t & 3u) == 3u &&
          _mm256_movemask_ps(_mm256_cmp_ps(sum, thrv, _CMP_GT_OQ)) == 0) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    int mask = _mm256_movemask_ps(_mm256_cmp_ps(sum, thrv, _CMP_GT_OQ));
    // Survivors re-derive through the exact scalar product, in ascending
    // window order so the running-best trajectory (and therefore every
    // screening decision) matches the scalar kernel exactly.
    while (mask != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      double match = ExactWindowProduct(p, wb + static_cast<size_t>(lane));
      if (match > best) {
        best = match;
        thr = ScreenThreshold(best, p.guard);
      }
    }
  }
  // Tail windows (< 8 remaining): exact scalar evaluation.
  for (; wb < windows; ++wb) {
    double match = ExactWindowProduct(p, wb);
    if (match > best) best = match;
  }
  return best;
}

double BestWindowsFusedAvx2(const WindowPlan& p, size_t windows) {
  static_assert(sizeof(SymbolId) == sizeof(int32_t),
                "fused screening gathers assume 32-bit symbol ids");
  double best = 0.0;
  float thr = ScreenThreshold(best, p.guard);
  size_t wb = 0;
  for (; wb + 8 <= windows; wb += 8) {
    // No plane: gather each term's 8 log factors straight from the log
    // table row for that term's symbol. Gathers cost more than the plane
    // loop's plain loads, but a single pattern would pay one full table
    // pass per plane row first — strictly more memory traffic. The
    // early-abandon check runs every 2nd term because each skipped term
    // saves a whole gather.
    const __m256 thrv = _mm256_set1_ps(thr);
    __m256 sum = _mm256_setzero_ps();
    bool alive = true;
    for (size_t t = 0; t < p.num_terms; ++t) {
      const float* lrow =
          p.log_rows + static_cast<size_t>(p.term_syms[t]) * p.m;
      const __m256i vsym = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          p.seq + wb + static_cast<size_t>(p.term_offsets[t])));
      sum = _mm256_add_ps(sum, GatherPs(lrow, vsym));
      if ((t & 1u) == 1u &&
          _mm256_movemask_ps(_mm256_cmp_ps(sum, thrv, _CMP_GT_OQ)) == 0) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    int mask = _mm256_movemask_ps(_mm256_cmp_ps(sum, thrv, _CMP_GT_OQ));
    while (mask != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      double match = ExactWindowProduct(p, wb + static_cast<size_t>(lane));
      if (match > best) {
        best = match;
        thr = ScreenThreshold(best, p.guard);
      }
    }
  }
  for (; wb < windows; ++wb) {
    double match = ExactWindowProduct(p, wb);
    if (match > best) best = match;
  }
  return best;
}

void PlaneRowAvx2(float* dst, const float* lrow, const SymbolId* seq,
                  size_t n) {
  static_assert(sizeof(SymbolId) == sizeof(int32_t),
                "plane-row gathers assume 32-bit symbol ids");
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i vsym = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(seq + j));
    _mm256_storeu_ps(dst + j, GatherPs(lrow, vsym));
  }
  for (; j < n; ++j) {
    dst[j] = lrow[static_cast<size_t>(seq[j])];
  }
}

void LeafRunMaxAvx2(const double* col, double product, const SymbolId* syms,
                    const int32_t* idx, size_t count, double* best) {
  static_assert(sizeof(SymbolId) == sizeof(int32_t),
                "leaf-run gather assumes 32-bit symbol ids");
  const __m256d prod = _mm256_set1_pd(product);
  alignas(32) double vals[4];
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        reinterpret_cast<const int32_t*>(syms) + j));
    // One IEEE multiply per lane — bit-identical to the scalar loop.
    const __m256d v =
        _mm256_mul_pd(GatherPd(col, s), prod);
    _mm256_store_pd(vals, v);
    for (size_t k = 0; k < 4; ++k) {
      double& slot = best[static_cast<size_t>(idx[j + k])];
      if (vals[k] > slot) slot = vals[k];
    }
  }
  for (; j < count; ++j) {
    double v = product * col[static_cast<size_t>(syms[j])];
    double& slot = best[static_cast<size_t>(idx[j])];
    if (v > slot) slot = v;
  }
}

}  // namespace detail
}  // namespace nmine

#endif  // NMINE_HAVE_AVX2
