// Performance-analysis scenario (Section 1, second motivation).
//
// A monitored metric (e.g. CPU utilisation) takes continuous values that
// are quantized into categorical bins before mining. When the true value
// lies near a bin boundary, measurement jitter can push the observation
// into the adjacent bin. The compatibility matrix of that quantizer is
// derived analytically here (uniform in-bin value, Gaussian-ish jitter
// approximated by a triangular kernel), and the match model then mines
// load patterns that the support model fractures across neighbouring
// bins.
//
// Run: ./build/examples/event_quantization
#include <cmath>
#include <cstdio>
#include <vector>

#include "nmine/core/alphabet.h"
#include "nmine/eval/calibration.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/stats/random.h"

using namespace nmine;

namespace {

constexpr size_t kBins = 8;        // quantization levels
constexpr double kJitter = 0.35;   // jitter std-dev, in bin widths

/// Probability that a value uniform in bin `t` is observed in bin `o`
/// under additive jitter: spill mass goes to the adjacent bins.
double SpillProbability(size_t t, size_t o) {
  if (t == o) return 1.0 - 2.0 * 0.5 * kJitter * 0.5;
  long d = static_cast<long>(t) - static_cast<long>(o);
  if (d == 1 || d == -1) {
    // Edge bins have one fewer neighbour; re-normalized below.
    return 0.5 * kJitter * 0.5;
  }
  return 0.0;
}

}  // namespace

int main() {
  // Build the emission rows P(observed bin | true bin) and re-normalize
  // the edge bins.
  std::vector<std::vector<double>> emission(kBins,
                                            std::vector<double>(kBins, 0.0));
  for (size_t t = 0; t < kBins; ++t) {
    double total = 0.0;
    for (size_t o = 0; o < kBins; ++o) {
      emission[t][o] = SpillProbability(t, o);
      total += emission[t][o];
    }
    for (double& v : emission[t]) v /= total;
  }
  CompatibilityMatrix compat =
      PosteriorFromEmission(emission, std::vector<double>(kBins, 1.0));
  std::printf("Quantizer compatibility matrix (%zux%zu), diagonal ~%.2f\n",
              kBins, kBins, compat(3, 3));

  // True load pattern: an 8-step ramp 1 2 3 4 5 6 5 4 (bins), planted in
  // background traffic.
  Pattern ramp({1, 2, 3, 4, 5, 6, 5, 4});
  Rng rng(31);
  GeneratorConfig config;
  config.num_sequences = 400;
  config.min_length = 40;
  config.max_length = 60;
  config.alphabet_size = kBins;
  config.planted = {ramp};
  config.plant_probability = 0.5;
  InMemorySequenceDatabase true_db = GenerateDatabase(config, &rng);

  // Observe through the quantizer: sample the spill per reading.
  std::vector<DiscreteSampler> spill;
  for (size_t t = 0; t < kBins; ++t) spill.emplace_back(emission[t]);
  InMemorySequenceDatabase observed;
  true_db.Scan([&](const SequenceRecord& r) {
    SequenceRecord noisy;
    noisy.id = r.id;
    noisy.symbols.reserve(r.symbols.size());
    for (SymbolId s : r.symbols) {
      noisy.symbols.push_back(
          static_cast<SymbolId>(spill[static_cast<size_t>(s)].Sample(rng)));
    }
    observed.Add(std::move(noisy));
  });

  MinerOptions options;
  options.min_threshold = 0.22;
  options.space.max_span = 8;
  options.max_level = 8;

  LevelwiseMiner support_miner(Metric::kSupport, options);
  MiningResult rs =
      support_miner.Mine(observed, CompatibilityMatrix::Identity(kBins));
  // Deflation-calibrated thresholds (eval/calibration.h): the quantizer's
  // spill behaviour is known analytically, so the match model compares an
  // 8-step ramp against 0.22 scaled by its expected per-reading deflation.
  MatchCalibration calibration(compat);
  LevelwiseMiner match_miner(Metric::kMatch, options);
  MiningResult rm = match_miner.MineWithThreshold(
      observed, compat, [&](const Pattern& p) {
        return calibration.ThresholdFor(p, options.min_threshold);
      });

  Alphabet bins_alphabet = Alphabet::Anonymous(kBins);
  std::printf("\nSupport-model border (%zu frequent patterns):\n",
              rs.frequent.size());
  for (const Pattern& p : rs.border.ToSortedVector()) {
    std::printf("  %s\n", p.ToString(bins_alphabet).c_str());
  }
  std::printf("\nMatch-model border (%zu frequent patterns):\n",
              rm.frequent.size());
  for (const Pattern& p : rm.border.ToSortedVector()) {
    std::printf("  %s\n", p.ToString(bins_alphabet).c_str());
  }

  std::printf("\nPlanted ramp '%s':\n",
              ramp.ToString(bins_alphabet).c_str());
  std::printf("  support model: %s\n",
              rs.border.Covers(ramp) ? "recovered" : "CONCEALED by jitter");
  std::printf("  match model:   %s\n",
              rm.border.Covers(ramp) ? "recovered" : "missed");
  return 0;
}
