// Protein-motif recovery under BLOSUM50 mutation noise.
//
// The paper's motivating scenario (Section 1 / Figure 1): a conserved
// motif is planted in protein-like sequences; amino acids then mutate
// according to a realistic substitution model (BLOSUM50). The classical
// support model loses the motif; the match model — driven by the
// BLOSUM-derived compatibility matrix — restores it. A gapped
// Zinc-Finger-like signature (C x x C ... H x x H) is planted as well to
// exercise eternal-symbol patterns.
//
// Run: ./build/examples/protein_motifs
#include <cstdio>
#include <iostream>

#include "nmine/bio/amino_acids.h"
#include "nmine/bio/blosum.h"
#include "nmine/gen/noise_model.h"
#include "nmine/eval/calibration.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/levelwise_miner.h"

using namespace nmine;

int main() {
  Alphabet aa = AminoAcidAlphabet();
  Rng rng(2024);

  // A conserved contiguous motif and a gapped Zinc-Finger-like signature.
  Pattern motif = *Pattern::Parse("N K V D M T Q", aa);
  Pattern zinc = *Pattern::Parse("C * * C * * * * H * * H", aa);

  GeneratorConfig config;
  config.num_sequences = 400;
  config.min_length = 60;
  config.max_length = 90;
  config.alphabet_size = kNumAminoAcids;
  config.planted = {motif, zinc};
  config.plant_probability = 0.6;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);

  // Mutate every residue through the BLOSUM50 channel. Temperature 0.5
  // keeps roughly three quarters of residues intact — noisy enough that
  // exact occurrences of a 7-residue motif become rare.
  const double temperature = 0.5;
  EmissionModel channel(BlosumEmissionRows(temperature));
  InMemorySequenceDatabase observed = channel.Apply(standard, &rng);
  CompatibilityMatrix compat = BlosumCompatibilityMatrix(temperature);
  std::printf("BLOSUM50 channel: average identity mass %.3f\n",
              BlosumDiagonalMass(temperature));

  MinerOptions options;
  options.min_threshold = 0.25;
  options.space.max_span = 12;
  options.space.max_gap = 4;
  options.max_level = 7;

  // Support model on the mutated data: the motif's exact occurrences
  // are shredded by the mutations.
  LevelwiseMiner support_miner(Metric::kSupport, options);
  MiningResult support_result =
      support_miner.Mine(observed, CompatibilityMatrix::Identity(20));

  // Match model with the BLOSUM-derived compatibility matrix. The
  // threshold is calibrated for the expected per-residue match deflation
  // (eval/calibration.h) — the match model knows the mutation behaviour,
  // the support baseline does not.
  MatchCalibration calibration(compat);
  LevelwiseMiner match_miner(Metric::kMatch, options);
  MiningResult match_result = match_miner.MineWithThreshold(
      observed, compat, [&](const Pattern& p) {
        return calibration.ThresholdFor(p, options.min_threshold);
      });

  auto report = [&](const char* name, const MiningResult& r) {
    std::printf("\n%s: %zu frequent patterns, border:\n", name,
                r.frequent.size());
    for (const Pattern& p : r.border.ToSortedVector()) {
      std::printf("  %s\n", p.ToString(aa).c_str());
    }
  };
  report("Support model (mutated data)", support_result);
  report("Match model (mutated data)", match_result);

  // Did each model keep the planted motif's 6-symbol prefix?
  Pattern probe = *Pattern::Parse("N K V D M T", aa);
  std::printf("\nPlanted motif prefix '%s':\n", probe.ToString(aa).c_str());
  std::printf("  support model recovered: %s\n",
              support_result.border.Covers(probe) ? "yes" : "NO (concealed)");
  std::printf("  match model recovered:   %s\n",
              match_result.border.Covers(probe) ? "yes" : "NO");
  return 0;
}
