// Consumer-behaviour clickstream mining (Section 1, third motivation).
//
// Customers intend to buy product sequences, but sometimes purchase a
// substitute (out of stock, misplaced, promotion). The substitution
// behaviour is captured by a compatibility matrix over the product
// catalogue; the match model recovers the customers' true purchase
// intentions from the substituted observations.
//
// Run: ./build/examples/clickstream
#include <cstdio>

#include "nmine/core/alphabet.h"
#include "nmine/eval/calibration.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"

using namespace nmine;

int main() {
  // A tiny catalogue: each pair (x, x_alt) are interchangeable brands.
  Alphabet catalogue({"espresso", "espresso_alt", "milk", "milk_alt",
                      "cereal", "cereal_alt", "bread", "bread_alt", "jam",
                      "butter", "coffee_filter", "tea"});
  const size_t m = catalogue.size();

  // Emission behaviour: with probability 0.25 a customer substitutes the
  // sibling brand (ids 2k <-> 2k+1 for the first four pairs); the rest of
  // the catalogue is never substituted.
  std::vector<std::vector<double>> emission(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) emission[i][i] = 1.0;
  for (size_t k = 0; k < 4; ++k) {
    size_t a = 2 * k;
    size_t b = 2 * k + 1;
    emission[a][a] = 0.75;
    emission[a][b] = 0.25;
    emission[b][b] = 0.75;
    emission[b][a] = 0.25;
  }
  EmissionModel channel(emission);
  CompatibilityMatrix compat =
      PosteriorFromEmission(emission, std::vector<double>(m, 1.0));

  // True shopping habit: espresso -> milk -> cereal -> bread (intended
  // basket order), planted into random browsing noise.
  Pattern habit({0, 2, 4, 6});
  Rng rng(7);
  GeneratorConfig config;
  config.num_sequences = 500;
  config.min_length = 12;
  config.max_length = 30;
  config.alphabet_size = m;
  config.planted = {habit};
  config.plant_probability = 0.5;
  InMemorySequenceDatabase intended = GenerateDatabase(config, &rng);
  InMemorySequenceDatabase observed = channel.Apply(intended, &rng);

  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 6;
  options.sample_size = 200;
  options.seed = 99;

  LevelwiseMiner support_miner(Metric::kSupport, options);
  MiningResult support_result =
      support_miner.Mine(observed, CompatibilityMatrix::Identity(m));

  // The match model knows the substitution behaviour (compat), so it can
  // also calibrate the threshold for the expected per-position deflation
  // (see eval/calibration.h): a 4-item habit whose items each survive
  // substitution with probability 0.75 is compared against
  // 0.3 * (0.75^2 + 0.25^2)^4, not against the raw 0.3.
  MatchCalibration calibration(compat);
  LevelwiseMiner match_miner(Metric::kMatch, options);
  observed.ResetScanCount();
  MiningResult match_result = match_miner.MineWithThreshold(
      observed, compat, [&](const Pattern& p) {
        return calibration.ThresholdFor(p, options.min_threshold);
      });

  std::printf("Observed database: %zu shopping sessions\n",
              observed.NumSequences());
  std::printf("\nSupport model border (exact purchases only):\n");
  for (const Pattern& p : support_result.border.ToSortedVector()) {
    std::printf("  %s  (support %.3f)\n", p.ToString(catalogue).c_str(),
                support_result.values[p]);
  }
  std::printf(
      "\nMatch model border (substitution-aware, deflation-calibrated "
      "threshold):\n");
  for (const Pattern& p : match_result.border.ToSortedVector()) {
    std::printf("  %s  (match %.3f)\n", p.ToString(catalogue).c_str(),
                match_result.values[p]);
  }

  std::printf("\nPlanted habit '%s':\n", habit.ToString(catalogue).c_str());
  std::printf("  support model: %s\n",
              support_result.border.Covers(habit) ? "recovered"
                                                  : "CONCEALED by noise");
  std::printf("  match model:   %s\n",
              match_result.border.Covers(habit) ? "recovered" : "missed");
  return 0;
}
