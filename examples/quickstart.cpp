// Quickstart: the paper's Section-3 worked example, end to end.
//
// Builds the Figure-2 compatibility matrix and the Figure-4(a) database,
// prints support vs match for every symbol and every 2-pattern (the
// paper's Figures 4(b)/(c)), and then mines the database with the
// probabilistic border-collapsing algorithm.
//
// Run: ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "nmine/core/alphabet.h"
#include "nmine/core/compatibility_matrix.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/eval/table.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/border_collapse_miner.h"

using namespace nmine;

int main() {
  // --- The compatibility matrix of Figure 2: C(true, observed) =
  // Prob(true_value | observed_value). Columns sum to 1.
  CompatibilityMatrix c({
      {0.90, 0.10, 0.00, 0.00, 0.00},
      {0.05, 0.80, 0.05, 0.10, 0.00},
      {0.05, 0.00, 0.70, 0.15, 0.10},
      {0.00, 0.10, 0.10, 0.75, 0.05},
      {0.00, 0.00, 0.15, 0.00, 0.85},
  });
  MatrixValidation v = c.Validate();
  if (!v.ok) {
    std::cerr << "matrix invalid: " << v.message << "\n";
    return 1;
  }

  // --- The sequence database of Figure 4(a).
  InMemorySequenceDatabase db = InMemorySequenceDatabase::FromSequences({
      {0, 1, 2, 0},  // d1 d2 d3 d1
      {3, 1, 0},     // d4 d2 d1
      {2, 3, 1, 0},  // d3 d4 d2 d1
      {1, 1},        // d2 d2
  });
  Alphabet alphabet = Alphabet::Anonymous(5);

  // --- Figure 4(b): support vs match of each symbol.
  std::vector<Pattern> symbols;
  for (SymbolId d = 0; d < 5; ++d) symbols.push_back(Pattern({d}));
  std::vector<double> sup = CountSupports(db, symbols);
  std::vector<double> match = CountMatches(db, c, symbols);
  Table t1({"symbol", "support", "match"});
  for (size_t i = 0; i < symbols.size(); ++i) {
    t1.AddRow({symbols[i].ToString(alphabet), Table::Num(sup[i], 3),
               Table::Num(match[i], 4)});
  }
  std::cout << "Support vs match of each symbol (paper Figure 4(b)):\n";
  t1.Print(std::cout);

  // --- Figure 4(c): all 25 two-symbol patterns.
  std::vector<Pattern> pairs;
  for (SymbolId a = 0; a < 5; ++a) {
    for (SymbolId b = 0; b < 5; ++b) {
      pairs.push_back(Pattern({a, b}));
    }
  }
  sup = CountSupports(db, pairs);
  match = CountMatches(db, c, pairs);
  Table t2({"pattern", "support", "match"});
  for (size_t i = 0; i < pairs.size(); ++i) {
    t2.AddRow({pairs[i].ToString(alphabet), Table::Num(sup[i], 2),
               Table::Num(match[i], 4)});
  }
  std::cout << "\nSupport vs match of 2-patterns (paper Figure 4(c)):\n";
  t2.Print(std::cout);

  // --- Mine with the probabilistic algorithm.
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 4;
  options.space.max_gap = 1;
  options.sample_size = db.NumSequences();  // tiny database: sample = all
  BorderCollapseMiner miner(Metric::kMatch, options);
  db.ResetScanCount();
  MiningResult result = miner.Mine(db, c);

  std::cout << "\nFrequent patterns (min_match = " << options.min_threshold
            << "), found in " << result.scans << " database scans:\n";
  for (const Pattern& p : result.FrequentSorted()) {
    std::printf("  %-12s match = %.4f\n", p.ToString(alphabet).c_str(),
                result.values[p]);
  }
  std::cout << "Border (maximal frequent patterns):\n";
  for (const Pattern& p : result.border.ToSortedVector()) {
    std::cout << "  " << p.ToString(alphabet) << "\n";
  }
  return 0;
}
